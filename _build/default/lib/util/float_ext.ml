let approx_equal ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Float.abs (a -. b) <= atol +. (rtol *. Float.max (Float.abs a) (Float.abs b))

let clamp ~lo ~hi x =
  if lo > hi then invalid_arg "Float_ext.clamp: lo > hi";
  Float.min hi (Float.max lo x)

let lerp a b t = a +. (t *. (b -. a))

let linspace a b n =
  if n < 2 then invalid_arg "Float_ext.linspace: n < 2";
  List.init n (fun i -> lerp a b (float_of_int i /. float_of_int (n - 1)))

let logspace a b n =
  if a <= 0. || b <= 0. then invalid_arg "Float_ext.logspace: bounds <= 0";
  List.map (fun e -> 10. ** e) (linspace (Float.log10 a) (Float.log10 b) n)

let db_of_gain g = 20. *. Float.log10 (Float.abs g)
let gain_of_db db = 10. ** (db /. 20.)
let signum x = if x > 0. then 1. else if x < 0. then -1. else 0.
let sq x = x *. x

let rel_error reference measured =
  if reference = 0. then Float.abs measured
  else Float.abs (measured -. reference) /. Float.abs reference

let mean = function
  | [] -> invalid_arg "Float_ext.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Float_ext.geometric_mean: empty"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Float_ext.geometric_mean: x <= 0"
          else acc +. Float.log x)
        0. xs
    in
    Float.exp (log_sum /. float_of_int (List.length xs))
