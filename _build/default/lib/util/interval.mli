(** Closed real intervals.

    Used for two distinct purposes that share the same arithmetic: the
    search ranges of synthesis unknowns (ASTRX/OBLX-style "allowable
    value" intervals), and the directed interval constraint transformation
    of the VASE front end. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi].  Raises [Invalid_argument] if [lo > hi] or either bound
    is NaN. *)

val point : float -> t
(** Degenerate interval [[x, x]]. *)

val of_center : ?pct:float -> float -> t
(** [of_center ~pct x] is the interval [x] ± [pct] (fraction, default 0.2
    — the paper's ±20 %).  Works for negative centres: bounds are sorted. *)

val lo : t -> float
val hi : t -> float
val width : t -> float
val mid : t -> float
val contains : t -> float -> bool
val is_point : t -> bool

val clamp : t -> float -> float
(** Clamp a value into the interval. *)

val intersect : t -> t -> t option
val hull : t -> t -> t

(** {1 Interval arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] when the divisor contains 0. *)

val scale : float -> t -> t
val inv : t -> t

val map_monotone : (float -> float) -> t -> t
(** Image of the interval under a monotone function (increasing or
    decreasing: the result bounds are sorted). *)

val sample : Random.State.t -> t -> float
(** Uniform sample inside the interval. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
