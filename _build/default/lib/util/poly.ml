type t = float array

let trim c =
  let n = ref (Array.length c) in
  while !n > 1 && c.(!n - 1) = 0. do
    decr n
  done;
  Array.sub c 0 !n

let of_coeffs c =
  if Array.length c = 0 then [| 0. |] else trim (Array.copy c)

let coeffs t = Array.copy t
let degree t = Array.length t - 1
let zero = [| 0. |]
let one = [| 1. |]
let x = [| 0.; 1. |]

let eval t v =
  let acc = ref 0. in
  for i = Array.length t - 1 downto 0 do
    acc := (!acc *. v) +. t.(i)
  done;
  !acc

let eval_complex t v =
  let acc = ref Complex.zero in
  for i = Array.length t - 1 downto 0 do
    acc := Complex.add (Complex.mul !acc v) { Complex.re = t.(i); im = 0. }
  done;
  !acc

let derivative t =
  if Array.length t <= 1 then zero
  else trim (Array.init (Array.length t - 1) (fun i -> float_of_int (i + 1) *. t.(i + 1)))

let add a b =
  let n = max (Array.length a) (Array.length b) in
  let get c i = if i < Array.length c then c.(i) else 0. in
  trim (Array.init n (fun i -> get a i +. get b i))

let scale k t = trim (Array.map (fun c -> k *. c) t)
let sub a b = add a (scale (-1.) b)

let mul a b =
  let r = Array.make (Array.length a + Array.length b - 1) 0. in
  Array.iteri
    (fun i ai -> Array.iteri (fun j bj -> r.(i + j) <- r.(i + j) +. (ai *. bj)) b)
    a;
  trim r

let of_real_roots roots =
  List.fold_left (fun acc r -> mul acc [| -.r; 1. |]) one roots

(* Durand–Kerner: iterate all roots simultaneously from perturbed points on
   a circle; converges for the well-separated small-degree polynomials the
   AWE code produces. *)
let roots ?(max_iter = 500) ?(tol = 1e-12) t =
  let n = degree t in
  if n < 1 then invalid_arg "Poly.roots: degree < 1";
  let lead = t.(n) in
  let monic = Array.map (fun c -> c /. lead) t in
  let eval_monic = eval_complex monic in
  (* Initial guesses: points on a circle of radius based on coefficient
     magnitudes, at non-symmetric angles (the classic 0.4 + 0.9i seed). *)
  let radius =
    Array.fold_left (fun acc c -> Float.max acc (Float.abs c)) 1. monic
  in
  let radius = 1. +. radius in
  let zs =
    Array.init n (fun k ->
        let angle = (float_of_int k *. 2.6) +. 0.4 in
        Complex.mul
          { Complex.re = radius; im = 0. }
          { Complex.re = Float.cos angle; im = Float.sin angle })
  in
  let converged = ref false and iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let worst = ref 0. in
    for k = 0 to n - 1 do
      let zk = zs.(k) in
      let denom = ref Complex.one in
      for j = 0 to n - 1 do
        if j <> k then denom := Complex.mul !denom (Complex.sub zk zs.(j))
      done;
      let delta = Complex.div (eval_monic zk) !denom in
      zs.(k) <- Complex.sub zk delta;
      worst := Float.max !worst (Complex.norm delta)
    done;
    if !worst < tol *. radius then converged := true
  done;
  Array.to_list zs

let real_roots ?(tol = 1e-7) t =
  roots t
  |> List.filter_map (fun (z : Complex.t) ->
         if Float.abs z.im <= tol *. (1. +. Float.abs z.re) then Some z.re
         else None)
  |> List.sort compare

let butterworth_poles n =
  if n < 1 then invalid_arg "Poly.butterworth_poles: n < 1";
  List.init n (fun k ->
      let theta =
        Float.pi *. (2. *. float_of_int (k + 1) +. float_of_int n -. 1.)
        /. (2. *. float_of_int n)
      in
      { Complex.re = Float.cos theta; im = Float.sin theta })

let pp fmt t =
  let started = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0. || (degree t = 0 && i = 0) then begin
        if !started then Format.fprintf fmt " + ";
        if i = 0 then Format.fprintf fmt "%g" c
        else if i = 1 then Format.fprintf fmt "%g x" c
        else Format.fprintf fmt "%g x^%d" c i;
        started := true
      end)
    t
