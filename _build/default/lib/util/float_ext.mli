(** Small floating-point helpers shared across the code base. *)

val approx_equal : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_equal a b] is true when [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val clamp : lo:float -> hi:float -> float -> float
(** Clamp into [[lo, hi]].  Raises [Invalid_argument] if [lo > hi]. *)

val lerp : float -> float -> float -> float
(** [lerp a b t] is [a + t * (b - a)]. *)

val linspace : float -> float -> int -> float list
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive.  [n >= 2]. *)

val logspace : float -> float -> int -> float list
(** [logspace a b n] is [n] log-spaced points from [a] to [b] inclusive;
    both must be positive. *)

val db_of_gain : float -> float
(** [20 * log10 |gain|]. *)

val gain_of_db : float -> float

val signum : float -> float
(** -1., 0. or 1. *)

val sq : float -> float

val rel_error : float -> float -> float
(** [rel_error reference measured] is [|measured - reference| / |reference|];
    when [reference = 0.] it is [|measured|]. *)

val mean : float list -> float
(** Arithmetic mean; raises [Invalid_argument] on the empty list. *)

val geometric_mean : float list -> float
(** Geometric mean of positive values; raises [Invalid_argument] on the
    empty list. *)
