lib/process/process.mli: Format Model_card
