lib/process/card_parser.ml: Ape_symbolic Ape_util List Model_card Printf Process String
