lib/process/model_card.mli: Format
