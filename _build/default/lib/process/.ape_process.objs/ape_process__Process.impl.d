lib/process/process.ml: Ape_util Format Model_card
