lib/process/card_parser.mli: Model_card Process
