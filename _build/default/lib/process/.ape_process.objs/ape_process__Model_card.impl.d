lib/process/model_card.ml: Ape_util Float Format Printf
