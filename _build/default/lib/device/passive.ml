type resistor = { r : float; area : float }
type capacitor = { c : float; area : float }

let resistor process r =
  if r <= 0. then invalid_arg "Passive.resistor: non-positive";
  { r; area = Ape_process.Process.resistor_area process r }

let capacitor process c =
  if c <= 0. then invalid_arg "Passive.capacitor: non-positive";
  { c; area = Ape_process.Process.capacitor_area process c }

(* E96 series mantissas are 10^(k/96) rounded to 3 digits; generate them
   rather than tabulate. *)
let e96_mantissas =
  Array.init 96 (fun k ->
      Float.round (1000. *. (10. ** (float_of_int k /. 96.))) /. 1000.)

let e96_round x =
  if x <= 0. then invalid_arg "Passive.e96_round: non-positive";
  let decade = Float.floor (Float.log10 x) in
  let scale = 10. ** decade in
  let mant = x /. scale in
  let best = ref e96_mantissas.(0) and best_err = ref infinity in
  Array.iter
    (fun m ->
      let err = Float.abs (m -. mant) in
      if err < !best_err then begin
        best := m;
        best_err := err
      end)
    e96_mantissas;
  (* The next decade's first value (10.0) can be closer than 9.76. *)
  if Float.abs (10. -. mant) < !best_err then 10. *. scale
  else !best *. scale

let pp_resistor fmt { r; area } =
  Format.fprintf fmt "R=%sOhm (%sm^2)" (Ape_util.Units.to_eng r)
    (Ape_util.Units.to_eng area)

let pp_capacitor fmt { c; area } =
  Format.fprintf fmt "C=%sF (%sm^2)" (Ape_util.Units.to_eng c)
    (Ape_util.Units.to_eng area)
