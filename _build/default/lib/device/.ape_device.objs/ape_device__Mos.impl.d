lib/device/mos.ml: Ape_process Ape_util Float Format
