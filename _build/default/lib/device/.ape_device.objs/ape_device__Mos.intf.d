lib/device/mos.mli: Ape_process Format
