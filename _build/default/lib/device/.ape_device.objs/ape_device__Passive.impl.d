lib/device/passive.ml: Ape_process Ape_util Array Float Format
