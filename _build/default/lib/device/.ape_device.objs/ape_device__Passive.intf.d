lib/device/passive.mli: Ape_process Format
