(** MOS transistor model: large-signal current, small-signal parameters,
    parasitic capacitances, and the sizing procedures that form level 1 of
    the APE hierarchy (paper §4.1).

    Two views coexist deliberately:

    - {b Simulation view} ({!drain_current}, {!small_signal}): a smooth
      single-expression model (EKV-style effective overdrive) valid in all
      regions, polarity- and terminal-order-agnostic, with refinements
      selected by the card's model level.  The MNA simulator uses this and
      differentiates it numerically, so the linearisation can never
      disagree with the nonlinear equations.
    - {b Estimation view} ({!size_for_gm_id}, {!size_for_id_vov},
      {!operating_vgs}, {!quick_small_signal}): the paper's closed-form
      Level-1 equations (1)–(4), used by the estimator.  The small
      systematic gap between the two views is precisely the estimate-vs-
      simulation error the paper's tables measure. *)

type geom = {
  w : float;  (** drawn channel width, m *)
  l : float;  (** drawn channel length, m *)
}

val geom : w:float -> l:float -> geom
(** Raises [Invalid_argument] on non-positive dimensions. *)

val gate_area : geom -> float
(** W·L in m² — the paper's "gate area" metric. *)

type region = Cutoff | Triode | Saturation

type operating_point = {
  ids : float;  (** drain current, A; sign follows device convention *)
  region : region;
  vth : float;  (** threshold magnitude at this body bias, V *)
  vov : float;  (** effective overdrive magnitude, V *)
  vdsat : float;  (** saturation voltage magnitude, V *)
}

type small_signal = {
  gm : float;  (** gate transconductance, S (>= 0) *)
  gmb : float;  (** body transconductance, S (>= 0) *)
  gds : float;  (** output conductance, S (>= 0) *)
  cgs : float;
  cgd : float;
  cgb : float;
  cdb : float;
  csb : float;  (** capacitances, F (>= 0) *)
}

(** {1 Simulation view} *)

val drain_current :
  Ape_process.Model_card.t ->
  geom ->
  vgs:float ->
  vds:float ->
  vsb:float ->
  float
(** Drain current with actual terminal voltages (volts, signed; for PMOS
    pass the physically signed values — internally the device frame is
    flipped).  The returned current is the conventional current flowing
    {e into} the drain terminal: positive for a conducting NMOS, negative
    for a conducting PMOS.  Smooth in all arguments; handles [vds < 0] by
    source/drain exchange. *)

val operating_point :
  Ape_process.Model_card.t ->
  geom ->
  vgs:float ->
  vds:float ->
  vsb:float ->
  operating_point

val small_signal :
  Ape_process.Model_card.t ->
  geom ->
  vgs:float ->
  vds:float ->
  vsb:float ->
  small_signal
(** Conductances by central finite differences of {!drain_current}
    (guaranteed consistent with it); capacitances from the charge model
    below. *)

val capacitances :
  Ape_process.Model_card.t ->
  geom ->
  region:region ->
  vdb:float ->
  vsb:float ->
  float * float * float * float * float
(** [(cgs, cgd, cgb, cdb, csb)].  Intrinsic gate capacitance split by
    region (Meyer model: 2/3·WLC_ox to the source in saturation, half and
    half in triode, all to bulk in cutoff) plus overlap; junction caps use
    drain/source diffusions of width W and length 3·L_min with the
    [1/(1+V/PB)^MJ] bias dependence. *)

(** {1 Estimation view (paper equations (1)–(4))} *)

val est_vth : Ape_process.Model_card.t -> vsb:float -> float
(** Threshold magnitude with body effect (paper's V_th). *)

val est_gm : Ape_process.Model_card.t -> w_over_l:float -> ids:float -> float
(** gm = √(2·KP·(W/L)·|I_D|) — paper Eq. (2) in the KP = µC_ox
    convention. *)

val est_gmb : Ape_process.Model_card.t -> gm:float -> vsb:float -> float
(** gmb = gm·γ / (2√(2φ_f + V_SB)) — paper Eq. (3). *)

val est_gds :
  Ape_process.Model_card.t -> l:float -> ids:float -> vds:float -> float
(** gds = λ(L)·I_D / (1 + λ(L)·V_DS) — paper Eq. (4) with the λ(L)
    scaling of DESIGN.md D2. *)

val size_for_gm_id :
  Ape_process.Model_card.t -> gm:float -> ids:float -> float
(** W/L from a transconductance and current spec:
    W/L = gm² / (2·KP·I_D). *)

val size_for_id_vov :
  Ape_process.Model_card.t -> ids:float -> vov:float -> float
(** W/L from a current and overdrive spec: W/L = 2·I_D/(KP·V_ov²). *)

val operating_vgs :
  Ape_process.Model_card.t -> w_over_l:float -> ids:float -> vsb:float -> float
(** The V_GS magnitude that conducts [ids] in saturation:
    V_GS = V_T + V_ov with V_ov = √(2·I_D/(KP·W/L)), corrected through
    the inverse of the simulation model's overdrive smoothing so that a
    device biased at this V_GS actually conducts [ids] under
    {!drain_current} (the correction only matters below ~150 mV of
    overdrive). *)

(** {1 Sized transistor objects (the paper's level-1 "objects")} *)

type sized = {
  card : Ape_process.Model_card.t;
  geom : geom;
  ids : float;  (** bias current magnitude, A *)
  vgs : float;  (** gate-source magnitude, V *)
  vds : float;  (** drain-source magnitude assumed for the bias, V *)
  vsb : float;  (** source-body magnitude, V *)
  gm : float;
  gmb : float;
  gds : float;
  ss : small_signal;  (** full small-signal set incl. capacitances *)
}

type size_spec =
  | By_gm_id of { gm : float; ids : float; l : float }
      (** the paper's leading example: specify transconductance + current *)
  | By_id_vov of { ids : float; vov : float; l : float }
  | By_geom of { geom : geom; ids : float }
      (** explicit geometry carrying a current *)

val size :
  ?vds:float ->
  ?vsb:float ->
  process:Ape_process.Process.t ->
  Ape_process.Model_card.t ->
  size_spec ->
  sized
(** Build a sized-transistor object.  [vds] defaults to VDD/2 and [vsb]
    to 0 (both magnitudes).  Widths are clamped to
    [[wmin, wmax]] of the process; raises [Invalid_argument] if the spec
    is not realisable (non-positive gm/current). *)

val pp_sized : Format.formatter -> sized -> unit
