(** Passive elements: resistors and capacitors with layout-area
    estimates, used by the level-4 module library (filters, S&H, ADC
    ladders). *)

type resistor = { r : float;  (** Ω *) area : float  (** m² *) }
type capacitor = { c : float;  (** F *) area : float  (** m² *) }

val resistor : Ape_process.Process.t -> float -> resistor
(** Raises [Invalid_argument] on non-positive value. *)

val capacitor : Ape_process.Process.t -> float -> capacitor

val e96_round : float -> float
(** Snap to the nearest E96 (1 %) standard value — what a designer would
    actually draw.  Positive inputs only. *)

val pp_resistor : Format.formatter -> resistor -> unit
val pp_capacitor : Format.formatter -> capacitor -> unit
