module Card = Ape_process.Model_card
module Proc = Ape_process.Process

type geom = { w : float; l : float }

let geom ~w ~l =
  if w <= 0. || l <= 0. then invalid_arg "Mos.geom: non-positive dimension";
  { w; l }

let gate_area g = g.w *. g.l

type region = Cutoff | Triode | Saturation

type operating_point = {
  ids : float;
  region : region;
  vth : float;
  vov : float;
  vdsat : float;
}

type small_signal = {
  gm : float;
  gmb : float;
  gds : float;
  cgs : float;
  cgd : float;
  cgb : float;
  cdb : float;
  csb : float;
}

(* Smoothing constant for the EKV-style effective overdrive; n·Vt with
   n = 1.2 at room temperature. *)
let n_vt = 1.2 *. 0.02585

(* vov_eff = 2nVt·ln(1 + exp(vov / 2nVt)): equals vov for vov >> 0,
   decays to 0 smoothly below threshold. *)
let vov_eff vov =
  let s = 2. *. n_vt in
  let x = vov /. s in
  if x > 40. then vov
  else if x < -40. then s *. Float.exp x
  else s *. Float.log1p (Float.exp x)

(* Effective KP with level-dependent refinements evaluated at overdrive
   [vov] and length [l]. *)
let kp_eff (card : Card.t) ~vov ~l =
  let kp = card.Card.kp in
  match card.Card.level with
  | Card.Level1 -> kp
  | Card.Level2 -> kp /. (1. +. (card.Card.theta *. Float.max 0. vov))
  | Card.Level3 | Card.Bsim1 ->
    let theta_term = 1. +. (card.Card.theta *. Float.max 0. vov) in
    (* Velocity saturation: critical field Ec = 2·vmax/µ0. *)
    let ecrit = 2. *. card.Card.vmax /. card.Card.u0 in
    let leff = Float.max 1e-9 (l -. (2. *. card.Card.ld)) in
    let vsat_term = 1. +. (Float.max 0. vov /. (ecrit *. leff)) in
    kp /. (theta_term *. vsat_term)

(* Core current in the NMOS frame with vds >= 0. *)
let ids_frame (card : Card.t) g ~vgs ~vds ~vsb =
  let vth = Card.vth card ~vsb in
  let vth =
    match card.Card.level with
    | Card.Bsim1 -> vth -. (card.Card.eta *. vds)
    | Card.Level1 | Card.Level2 | Card.Level3 -> vth
  in
  let vov = vgs -. vth in
  let ve = vov_eff vov in
  let kp = kp_eff card ~vov:ve ~l:g.l in
  let leff = Float.max 1e-9 (g.l -. (2. *. card.Card.ld)) in
  let wl = g.w /. leff in
  let lam = Card.lambda_at card g.l in
  let clm = 1. +. (lam *. vds) in
  if vds >= ve then 0.5 *. kp *. wl *. ve *. ve *. clm
  else kp *. wl *. ((ve *. vds) -. (0.5 *. vds *. vds)) *. clm

let drain_current card g ~vgs ~vds ~vsb =
  let p = Card.polarity card in
  (* Flip into the NMOS frame. *)
  let vgs = p *. vgs and vds = p *. vds and vsb = p *. vsb in
  let i =
    if vds >= 0. then ids_frame card g ~vgs ~vds ~vsb
    else
      (* Source/drain exchange: the terminal at lower (frame) potential
         acts as source. *)
      let vgs' = vgs -. vds and vds' = -.vds and vsb' = vsb +. vds in
      -.ids_frame card g ~vgs:vgs' ~vds:vds' ~vsb:vsb'
  in
  p *. i

let operating_point card g ~vgs ~vds ~vsb =
  let p = Card.polarity card in
  let fvgs = p *. vgs and fvds = p *. vds and fvsb = p *. vsb in
  let ids = drain_current card g ~vgs ~vds ~vsb in
  let vth = Card.vth card ~vsb:fvsb in
  let vov = fvgs -. vth in
  let ve = vov_eff vov in
  let region =
    if vov < 0.01 then Cutoff
    else if Float.abs fvds >= ve then Saturation
    else Triode
  in
  { ids; region; vth; vov = ve; vdsat = ve }

let capacitances (card : Card.t) g ~region ~vdb ~vsb =
  let cox = Card.cox card in
  let cox_total = g.w *. g.l *. cox in
  let cgs_i, cgd_i, cgb_i =
    (* Meyer capacitance split. *)
    match region with
    | Saturation -> (2. /. 3. *. cox_total, 0., 0.)
    | Triode -> (0.5 *. cox_total, 0.5 *. cox_total, 0.)
    | Cutoff -> (0., 0., cox_total)
  in
  let cgs = cgs_i +. (card.Card.cgso *. g.w) in
  let cgd = cgd_i +. (card.Card.cgdo *. g.w) in
  let cgb = cgb_i +. (card.Card.cgbo *. g.l) in
  (* Junction caps: diffusion of width W and length 3·Lmin-ish (3 µm in
     the 1.2 µm process); reverse-bias reduces them. *)
  let ldiff = 3.0e-6 in
  let area = g.w *. ldiff in
  let perim = (2. *. ldiff) +. g.w in
  let junction v =
    let vr = Float.max 0. (Card.polarity card *. v) in
    let bottom =
      card.Card.cj *. area /. ((1. +. (vr /. card.Card.pb)) ** card.Card.mj)
    in
    let side =
      card.Card.cjsw *. perim
      /. ((1. +. (vr /. card.Card.pb)) ** card.Card.mjsw)
    in
    bottom +. side
  in
  (cgs, cgd, cgb, junction vdb, junction vsb)

let small_signal card g ~vgs ~vds ~vsb =
  let h = 1e-5 in
  let i v_gs v_ds v_sb = drain_current card g ~vgs:v_gs ~vds:v_ds ~vsb:v_sb in
  let d f = (f h -. f (-.h)) /. (2. *. h) in
  let gm = d (fun e -> i (vgs +. e) vds vsb) in
  let gds = d (fun e -> i vgs (vds +. e) vsb) in
  (* gmb: response to bulk-source voltage; vbs = -vsb in our argument
     convention, so negate. *)
  let gmb = -.(d (fun e -> i vgs vds (vsb +. e))) in
  let p = Card.polarity card in
  let op = operating_point card g ~vgs ~vds ~vsb in
  let cgs, cgd, cgb, cdb, csb =
    capacitances card g ~region:op.region ~vdb:(p *. (vds +. vsb)) ~vsb:(p *. vsb)
  in
  {
    gm = Float.abs gm;
    gmb = Float.abs gmb;
    gds = Float.abs gds;
    cgs;
    cgd;
    cgb;
    cdb;
    csb;
  }

(* ---- Estimation view: the paper's closed-form Level-1 equations. ---- *)

let est_vth card ~vsb = Card.vth card ~vsb

let est_gm (card : Card.t) ~w_over_l ~ids =
  if w_over_l <= 0. then invalid_arg "Mos.est_gm: W/L <= 0";
  Float.sqrt (2. *. card.Card.kp *. w_over_l *. Float.abs ids)

let est_gmb (card : Card.t) ~gm ~vsb =
  gm *. card.Card.gamma
  /. (2. *. Float.sqrt (Float.max 1e-3 (card.Card.phi +. vsb)))

let est_gds card ~l ~ids ~vds =
  let lam = Card.lambda_at card l in
  lam *. Float.abs ids /. (1. +. (lam *. Float.abs vds))

let size_for_gm_id (card : Card.t) ~gm ~ids =
  if gm <= 0. || ids = 0. then invalid_arg "Mos.size_for_gm_id";
  gm *. gm /. (2. *. card.Card.kp *. Float.abs ids)

let size_for_id_vov (card : Card.t) ~ids ~vov =
  if vov <= 0. || ids = 0. then invalid_arg "Mos.size_for_id_vov";
  2. *. Float.abs ids /. (card.Card.kp *. vov *. vov)

(* Inverse of the simulation model's overdrive smoothing: the raw
   vgs - vth that produces effective overdrive [vov] under vov_eff. *)
let vov_raw_of_eff vov =
  let s = 2. *. n_vt in
  let x = vov /. s in
  if x > 40. then vov else s *. Float.log (Float.expm1 x)

let operating_vgs (card : Card.t) ~w_over_l ~ids ~vsb =
  if w_over_l <= 0. then invalid_arg "Mos.operating_vgs";
  let vov = Float.sqrt (2. *. Float.abs ids /. (card.Card.kp *. w_over_l)) in
  est_vth card ~vsb +. vov_raw_of_eff vov

type sized = {
  card : Card.t;
  geom : geom;
  ids : float;
  vgs : float;
  vds : float;
  vsb : float;
  gm : float;
  gmb : float;
  gds : float;
  ss : small_signal;
}

type size_spec =
  | By_gm_id of { gm : float; ids : float; l : float }
  | By_id_vov of { ids : float; vov : float; l : float }
  | By_geom of { geom : geom; ids : float }

let size ?vds ?(vsb = 0.) ~process card spec =
  let vdd = process.Proc.vdd -. process.Proc.vss in
  let vds = match vds with Some v -> v | None -> vdd /. 2. in
  (* Channel-length modulation boosts the current at the assumed V_DS;
     shrink the ratio so the bias current is realised, not exceeded. *)
  let clm l = 1. +. (Card.lambda_at card l *. Float.abs vds) in
  (* Realise a W/L ratio within the process geometry limits: when the
     ratio calls for W below Wmin, hold W = Wmin and stretch L instead
     (capped at 50·Lmin) so weak loads keep their intended overdrive. *)
  let realize wl l =
    let w = wl *. l in
    if w > process.Proc.wmax then geom ~w:process.Proc.wmax ~l
    else if w >= process.Proc.wmin then geom ~w ~l
    else begin
      let l_stretch =
        Float.min (process.Proc.wmin /. wl) (50. *. process.Proc.lmin)
      in
      geom ~w:process.Proc.wmin ~l:(Float.max l l_stretch)
    end
  in
  (* The current equations act on the effective length L − 2·LD; the
     required ratio is converted to drawn geometry before realisation. *)
  let eff_factor l =
    Float.max 0.1 ((l -. (2. *. card.Card.ld)) /. l)
  in
  let g, ids =
    match spec with
    | By_gm_id { gm; ids; l } ->
      let wl = size_for_gm_id card ~gm ~ids /. clm l *. eff_factor l in
      (realize wl l, Float.abs ids)
    | By_id_vov { ids; vov; l } ->
      let wl = size_for_id_vov card ~ids ~vov /. clm l *. eff_factor l in
      (realize wl l, Float.abs ids)
    | By_geom { geom = g; ids } -> (g, Float.abs ids)
  in
  let w_over_l = g.w /. g.l in
  (* Bias overdrive of the realised geometry (effective length, CLM
     included) so that the device conducts [ids] at the assumed V_DS. *)
  let vov_real =
    Float.sqrt
      (2. *. ids
      /. (card.Card.kp *. (w_over_l /. eff_factor g.l) *. clm g.l))
  in
  let vgs = est_vth card ~vsb +. vov_raw_of_eff vov_real in
  (* Realised transconductance: the paper equation applied to the
     effective ratio, with the CLM boost — for By_gm_id this reproduces
     the requested gm exactly. *)
  let gm =
    est_gm card ~w_over_l:(w_over_l /. eff_factor g.l) ~ids
    *. Float.sqrt (clm g.l)
  in
  let gmb = est_gmb card ~gm ~vsb in
  let gds = est_gds card ~l:g.l ~ids ~vds in
  let p = Card.polarity card in
  let ss =
    let ss_sim =
      small_signal card g ~vgs:(p *. vgs) ~vds:(p *. vds) ~vsb:(p *. vsb)
    in
    (* The estimate object carries estimation-view conductances with
       simulation-view capacitances (the paper sizes caps from the same
       geometry either way). *)
    { ss_sim with gm; gmb; gds }
  in
  { card; geom = g; ids; vgs; vds; vsb; gm; gmb; gds; ss }

let pp_sized fmt s =
  Format.fprintf fmt
    "%s W=%s L=%s Id=%s Vgs=%.3g gm=%s gds=%s area=%sm^2"
    s.card.Card.name
    (Ape_util.Units.to_eng s.geom.w)
    (Ape_util.Units.to_eng s.geom.l)
    (Ape_util.Units.to_eng s.ids)
    s.vgs
    (Ape_util.Units.to_eng s.gm)
    (Ape_util.Units.to_eng s.gds)
    (Ape_util.Units.to_eng (gate_area s.geom))
