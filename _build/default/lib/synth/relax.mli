(** Shared OBLX-style bias relaxation: circuit node voltages as
    optimisation unknowns with Kirchhoff's current law as a penalty.

    The structure (node set, fixed source terminals, MNA indexing) is
    computed once per problem; candidates differ only in element values,
    never in connectivity, so the same index serves every evaluation. *)

type t

val create :
  ?node_window:float ->
  mode:[ `Wide | `Centered ] ->
  vdd:float ->
  Ape_circuit.Netlist.t ->
  t
(** [mode = `Wide]: node unknowns range over [[0, vdd]], centred
    mid-rail.  [mode = `Centered]: a true DC solve of the given netlist
    provides the centres and unknowns range ±[node_window] (default
    0.25 V) around them; when that solve fails, centres fall back to
    mid-rail. *)

val n_free : t -> int
(** Number of relaxed node-voltage unknowns (append these to the size
    unknowns). *)

val x_engine : t -> float array -> float array
(** Full MNA state vector from the unit-cube node part: free nodes
    mapped through their intervals, source-pinned nodes at their DC
    values, branch currents zero. *)

val centers_unit : t -> float array
(** The unit-cube coordinates of the node centres (the starting point
    for [`Centered] runs). *)

val kcl_penalty : t -> Ape_circuit.Netlist.t -> float array -> float
(** Voltage-equivalent KCL violation at the relaxed point: mean over
    free nodes of |f_i|/g_ii, normalised to 50 mV — 0 when Kirchhoff's
    laws hold, ~1 when nodes are tens of millivolts inconsistent. *)

val node_voltage : t -> float array -> Ape_circuit.Netlist.node -> float
(** Read a node voltage out of an engine state vector. *)

val fake_op : t -> Ape_circuit.Netlist.t -> float array -> Ape_spice.Dc.op
(** A {!Ape_spice.Dc.op} at the relaxed point (not a solved operating
    point!) for AWE/AC evaluation of the candidate. *)
