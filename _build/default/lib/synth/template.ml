module N = Ape_circuit.Netlist
module I = Ape_util.Interval

type target =
  | Mos_width of string list
  | Mos_length of string list
  | Cap_value of string list
  | Res_value of string list

type param = { name : string; target : target; range : I.t; log_scale : bool }

let param ?(log_scale = true) ~name ~range target =
  if log_scale && I.lo range <= 0. then
    invalid_arg "Template.param: log scale needs positive bounds";
  { name; target; range; log_scale }

type t = { base : N.t; params : param array }

let target_names = function
  | Mos_width names | Mos_length names | Cap_value names | Res_value names ->
    names

let make base params =
  let available = Hashtbl.create 32 in
  List.iter
    (fun e -> Hashtbl.replace available (N.element_name e) e)
    (N.elements base);
  List.iter
    (fun p ->
      List.iter
        (fun name ->
          match Hashtbl.find_opt available name with
          | None ->
            invalid_arg
              (Printf.sprintf "Template.make: no element %s for param %s"
                 name p.name)
          | Some e -> (
            match (p.target, e) with
            | (Mos_width _ | Mos_length _), N.Mosfet _ -> ()
            | Cap_value _, N.Capacitor _ -> ()
            | Res_value _, N.Resistor _ -> ()
            | (Mos_width _ | Mos_length _ | Cap_value _ | Res_value _), _ ->
              invalid_arg
                (Printf.sprintf
                   "Template.make: element %s has wrong kind for param %s"
                   name p.name)))
        (target_names p.target))
    params;
  { base; params = Array.of_list params }

let dim t = Array.length t.params

let value_of_unit p u =
  let u = Ape_util.Float_ext.clamp ~lo:0. ~hi:1. u in
  if p.log_scale then
    I.lo p.range *. ((I.hi p.range /. I.lo p.range) ** u)
  else I.lo p.range +. (u *. I.width p.range)

let unit_of_value p v =
  let u =
    if p.log_scale then
      Float.log (v /. I.lo p.range)
      /. Float.log (I.hi p.range /. I.lo p.range)
    else if I.width p.range = 0. then 0.5
    else (v -. I.lo p.range) /. I.width p.range
  in
  Ape_util.Float_ext.clamp ~lo:0. ~hi:1. u

let instantiate t point =
  if Array.length point <> dim t then
    invalid_arg "Template.instantiate: dimension mismatch";
  (* Collect the assignment for every touched element name. *)
  let widths = Hashtbl.create 16 in
  let lengths = Hashtbl.create 4 in
  let caps = Hashtbl.create 4 in
  let ress = Hashtbl.create 4 in
  Array.iteri
    (fun i p ->
      let v = value_of_unit p point.(i) in
      let table =
        match p.target with
        | Mos_width _ -> widths
        | Mos_length _ -> lengths
        | Cap_value _ -> caps
        | Res_value _ -> ress
      in
      List.iter (fun name -> Hashtbl.replace table name v) (target_names p.target))
    t.params;
  let elements =
    List.map
      (fun e ->
        match e with
        | N.Mosfet ({ name; geom; _ } as m) ->
          let w =
            Option.value ~default:geom.Ape_device.Mos.w
              (Hashtbl.find_opt widths name)
          in
          let l =
            Option.value ~default:geom.Ape_device.Mos.l
              (Hashtbl.find_opt lengths name)
          in
          N.Mosfet { m with geom = Ape_device.Mos.geom ~w ~l }
        | N.Capacitor ({ name; c; _ } as cap) ->
          N.Capacitor
            { cap with c = Option.value ~default:c (Hashtbl.find_opt caps name) }
        | N.Resistor ({ name; r; _ } as res) ->
          N.Resistor
            { res with r = Option.value ~default:r (Hashtbl.find_opt ress name) }
        | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ -> e)
      (N.elements t.base)
  in
  N.make ~title:t.base.N.title elements

let center_point t = Array.make (dim t) 0.5

let values_of_point t point =
  Array.to_list
    (Array.mapi
       (fun i p -> (p.name, value_of_unit p point.(i)))
       t.params)
