module N = Ape_circuit.Netlist
module I = Ape_util.Interval
module Rmat = Ape_util.Matrix.Rmat

type t = {
  base : N.t;
  index : Ape_spice.Engine.index;
  free_nodes : N.node list;
  free_row_ids : int list;
  fixed : (N.node * float) list;
  node_ranges : I.t array;
  node_centers : float array;
}

let create ?(node_window = 0.25) ~mode ~vdd base =
  let index = Ape_spice.Engine.build_index base in
  let fixed_tbl = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match e with
      | N.Vsource { p; n = nn; dc; _ } ->
        if not (N.is_ground p) then Hashtbl.replace fixed_tbl p dc;
        if not (N.is_ground nn) then Hashtbl.replace fixed_tbl nn 0.
      | N.Mosfet _ | N.Resistor _ | N.Capacitor _ | N.Isource _ | N.Vcvs _
      | N.Switch _ ->
        ())
    (N.elements base);
  let free_nodes =
    List.filter (fun n -> not (Hashtbl.mem fixed_tbl n)) (N.nodes base)
  in
  let center =
    match mode with
    | `Wide -> fun _ -> vdd /. 2.
    | `Centered -> (
      match Ape_spice.Dc.solve base with
      | op -> fun node -> Ape_spice.Dc.voltage op node
      | exception Ape_spice.Dc.No_convergence _ -> fun _ -> vdd /. 2.)
  in
  let range node =
    match mode with
    | `Wide -> I.make 0. vdd
    | `Centered ->
      let c = center node in
      I.make
        (Float.max 0. (c -. node_window))
        (Float.min vdd (c +. node_window))
  in
  {
    base;
    index;
    free_nodes;
    free_row_ids =
      List.filter_map
        (fun n -> Ape_spice.Engine.node_id index n)
        free_nodes;
    fixed = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fixed_tbl [];
    node_ranges = Array.of_list (List.map range free_nodes);
    node_centers = Array.of_list (List.map center free_nodes);
  }

let n_free t = List.length t.free_nodes

let x_engine t node_part =
  let x = Array.make (Ape_spice.Engine.size t.index) 0. in
  List.iteri
    (fun k node ->
      match Ape_spice.Engine.node_id t.index node with
      | Some i ->
        x.(i) <-
          I.lo t.node_ranges.(k) +. (node_part.(k) *. I.width t.node_ranges.(k))
      | None -> ())
    t.free_nodes;
  List.iter
    (fun (node, v) ->
      match Ape_spice.Engine.node_id t.index node with
      | Some i -> x.(i) <- v
      | None -> ())
    t.fixed;
  x

let centers_unit t =
  Array.mapi
    (fun k c ->
      let r = t.node_ranges.(k) in
      if I.width r = 0. then 0.5
      else Ape_util.Float_ext.clamp ~lo:0. ~hi:1. ((c -. I.lo r) /. I.width r))
    t.node_centers

let kcl_penalty t netlist x =
  let f, j =
    Ape_spice.Engine.residual_jacobian ~gmin:1e-12 netlist t.index x
  in
  List.fold_left
    (fun acc i ->
      let gii = Float.abs (Rmat.get j i i) in
      acc +. (Float.abs f.(i) /. Float.max 1e-9 gii))
    0. t.free_row_ids
  /. float_of_int (max 1 (n_free t))
  /. 0.05

let node_voltage t x node = Ape_spice.Engine.node_voltage t.index x node

let fake_op t netlist x =
  { Ape_spice.Dc.netlist; index = t.index; x; iterations = 0 }
