(** Generic simulated annealing over a box-constrained real vector —
    the optimisation engine of the ASTRX/OBLX substitute (the paper §3:
    "the optimization engine is based on a simulated annealing
    algorithm").

    The state lives in the unit hypercube; problems map it onto their
    parameter ranges.  Moves perturb one coordinate with a
    temperature-scaled Gaussian; the classic Metropolis criterion
    accepts, and a geometric schedule cools. *)

type schedule = {
  t_start : float;  (** initial temperature (cost units) *)
  t_end : float;
  cooling : float;  (** geometric factor per stage, in (0, 1) *)
  moves_per_stage : int;
  max_evaluations : int;  (** hard budget *)
}

val default_schedule : schedule
(** t 1.0 → 1e-4, cooling 0.9, 60 moves/stage, 20 000 evaluations. *)

val quick_schedule : schedule
(** Smaller budget for tests and quick benches. *)

type stats = {
  evaluations : int;
  accepted : int;
  best_cost : float;
  initial_cost : float;
  seconds : float;
}

val optimize :
  ?schedule:schedule ->
  ?stop_below:float ->
  rng:Ape_util.Rng.t ->
  dim:int ->
  cost:(float array -> float) ->
  x0:float array ->
  unit ->
  float array * stats
(** [optimize ~rng ~dim ~cost ~x0 ()] returns the best point found and
    run statistics.  [cost] must accept any point of [[0,1]^dim]; return
    [infinity] (or large values) for unevaluable candidates.  [x0] is
    clamped into the cube.  [stop_below] terminates the run as soon as
    the best cost drops under the threshold (time-to-spec
    measurements). *)
