lib/synth/opamp_problem.ml: Ape_circuit Ape_device Ape_estimator Ape_process Ape_spice Ape_util Array Cost Float List Option Printf Relax String Template
