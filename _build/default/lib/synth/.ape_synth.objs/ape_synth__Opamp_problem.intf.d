lib/synth/opamp_problem.mli: Ape_circuit Ape_estimator Ape_process Ape_util Cost
