lib/synth/anneal.mli: Ape_util
