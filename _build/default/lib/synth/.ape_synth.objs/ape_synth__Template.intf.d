lib/synth/template.mli: Ape_circuit Ape_util
