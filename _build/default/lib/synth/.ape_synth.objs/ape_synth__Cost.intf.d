lib/synth/cost.mli:
