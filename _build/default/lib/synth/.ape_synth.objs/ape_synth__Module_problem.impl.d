lib/synth/module_problem.ml: Anneal Ape_circuit Ape_device Ape_estimator Ape_process Ape_spice Ape_util Array Cost Float Hashtbl List Option Relax Template
