lib/synth/relax.mli: Ape_circuit Ape_spice
