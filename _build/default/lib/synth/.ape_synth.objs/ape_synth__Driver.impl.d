lib/synth/driver.ml: Anneal Ape_circuit Ape_estimator Cost Opamp_problem Option String
