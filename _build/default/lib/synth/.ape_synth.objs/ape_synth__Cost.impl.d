lib/synth/cost.ml: Float List
