lib/synth/driver.mli: Anneal Ape_circuit Ape_process Ape_util Cost Opamp_problem
