lib/synth/template.ml: Ape_circuit Ape_device Ape_util Array Float Hashtbl List Option Printf
