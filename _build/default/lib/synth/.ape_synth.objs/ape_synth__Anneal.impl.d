lib/synth/anneal.ml: Ape_util Array Float Unix
