lib/synth/relax.ml: Ape_circuit Ape_spice Ape_util Array Float Hashtbl List
