lib/synth/module_problem.mli: Anneal Ape_estimator Ape_process Ape_util Cost Template
