(** Parametrised netlist templates: the ASTRX-style problem input where
    "the circuit topology is already selected [and] the transistor sizes
    and bias points are set as unknowns" with user-supplied "intervals
    to establish ranges of allowable values" (paper §3).

    A parameter binds one value to a {e group} of elements (matched
    devices share one unknown, as a designer would insist), with a
    linear or logarithmic interval.  The annealer works in [[0,1]]
    coordinates; {!instantiate} maps a point to a concrete netlist. *)

type target =
  | Mos_width of string list  (** element names sharing one W *)
  | Mos_length of string list
  | Cap_value of string list
  | Res_value of string list

type param = {
  name : string;
  target : target;
  range : Ape_util.Interval.t;
  log_scale : bool;
}

val param :
  ?log_scale:bool -> name:string -> range:Ape_util.Interval.t -> target ->
  param
(** [log_scale] defaults to true (geometry and passives span decades). *)

type t = {
  base : Ape_circuit.Netlist.t;  (** testbench-complete netlist *)
  params : param array;
}

val make : Ape_circuit.Netlist.t -> param list -> t
(** Raises [Invalid_argument] if a parameter references an element that
    is absent from the netlist or of the wrong kind. *)

val dim : t -> int

val value_of_unit : param -> float -> float
(** Map a [[0,1]] coordinate into the parameter's interval (log or
    linear). *)

val unit_of_value : param -> float -> float
(** Inverse of {!value_of_unit}, clamped to [[0,1]]. *)

val instantiate : t -> float array -> Ape_circuit.Netlist.t
(** Apply a unit-cube point. *)

val center_point : t -> float array
(** The cube point whose values are each interval's midpoint (geometric
    midpoint for log-scaled parameters). *)

val values_of_point : t -> float array -> (string * float) list
(** Named physical values at a point, for reporting. *)
