(** Small-signal AC analysis.

    Linearises the circuit at a DC operating point — the AC system matrix
    is exactly the DC Newton Jacobian plus jω·C, so the linearisation can
    never disagree with the nonlinear model — and solves the complex MNA
    system at each requested frequency.  AC excitations are the [ac]
    magnitudes declared on the netlist's independent sources. *)

type solution = {
  freq : float;  (** Hz *)
  x : Complex.t array;  (** node phasors then branch currents *)
}

type sweep = {
  op : Dc.op;
  points : solution list;  (** ascending frequency *)
}

val solve_at : Dc.op -> float -> solution
(** Single-frequency solve. *)

val voltage : Dc.op -> solution -> Ape_circuit.Netlist.node -> Complex.t

val sweep :
  ?points_per_decade:int -> fstart:float -> fstop:float -> Dc.op -> sweep
(** Logarithmic sweep, inclusive of both endpoints.  Default 10
    points/decade. *)

val transfer :
  node:Ape_circuit.Netlist.node -> sweep -> (float * Complex.t) list
(** [(frequency, phasor)] of one node over the sweep. *)

val magnitude_at :
  node:Ape_circuit.Netlist.node -> Dc.op -> float -> float
(** |V(node)| at one frequency — the building block the measurement
    search routines refine with. *)
