module N = Ape_circuit.Netlist
module Card = Ape_process.Model_card
module Mos = Ape_device.Mos
module Cmat = Ape_util.Matrix.Cmat
module Rmat = Ape_util.Matrix.Rmat

type contribution = { element : string; psd : float }

let four_kt = 4. *. Ape_util.Units.k_boltzmann *. 300.15

(* Current-noise PSD (A²/Hz) of each element between its two noise
   terminals at the operating point. *)
let noise_sources (op : Dc.op) freq =
  List.filter_map
    (fun e ->
      match e with
      | N.Resistor { name; a; b; r } -> Some (name, a, b, four_kt /. r)
      | N.Mosfet { name; card; d; g; s; b; geom; _ } ->
        let vd = Dc.voltage op d
        and vg = Dc.voltage op g
        and vs = Dc.voltage op s
        and vb = Dc.voltage op b in
        let ss =
          Mos.small_signal card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let point =
          Mos.operating_point card geom ~vgs:(vg -. vs) ~vds:(vd -. vs)
            ~vsb:(vs -. vb)
        in
        let id = Float.abs point.Mos.ids in
        let thermal = four_kt *. (2. /. 3.) *. ss.Mos.gm in
        let leff =
          Float.max 1e-9 (geom.Mos.l -. (2. *. card.Card.ld))
        in
        (* SPICE flicker model: KF·I^AF / (Cox·Leff²·f), as a drain
           current PSD. *)
        let flicker =
          card.Card.kf
          *. (id ** card.Card.af)
          /. (Card.cox card *. leff *. leff *. Float.max 1e-3 freq)
        in
        Some (name, d, s, thermal +. flicker)
      | N.Capacitor _ | N.Vsource _ | N.Isource _ | N.Vcvs _ | N.Switch _ ->
        None)
    (N.elements op.Dc.netlist)

(* Complex MNA matrix at the operating point (same assembly as Ac). *)
let system_matrix (op : Dc.op) freq =
  let netlist = op.Dc.netlist and index = op.Dc.index in
  let n = Engine.size index in
  let _, g = Engine.residual_jacobian ~gmin:1e-12 netlist index op.Dc.x in
  let c = Engine.stamp_capacitances netlist index op.Dc.x in
  let omega = 2. *. Float.pi *. freq in
  let a = Cmat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let gre = Rmat.get g i j and cim = Rmat.get c i j in
      if gre <> 0. || cim <> 0. then
        Cmat.set a i j { Complex.re = gre; im = omega *. cim }
    done
  done;
  a

let output_noise ~out ~freq (op : Dc.op) =
  let index = op.Dc.index in
  let a = system_matrix op freq in
  let lu = Cmat.lu_factor a in
  let n = Engine.size index in
  let inject a_node b_node =
    (* Transfer impedance |v(out)| for a 1 A source from a to b. *)
    let rhs = Array.make n Complex.zero in
    (match Engine.node_id index a_node with
    | Some i -> rhs.(i) <- Complex.sub rhs.(i) Complex.one
    | None -> ());
    (match Engine.node_id index b_node with
    | Some i -> rhs.(i) <- Complex.add rhs.(i) Complex.one
    | None -> ());
    let x = Cmat.lu_solve lu rhs in
    match Engine.node_id index out with
    | Some i -> Complex.norm x.(i)
    | None -> 0.
  in
  let contributions =
    List.map
      (fun (element, a_node, b_node, s_i) ->
        let z = inject a_node b_node in
        { element; psd = s_i *. z *. z })
      (noise_sources op freq)
  in
  let total = List.fold_left (fun acc c -> acc +. c.psd) 0. contributions in
  ( total,
    List.sort (fun x y -> compare y.psd x.psd) contributions )

let input_referred ~out ~freq op =
  let total, _ = output_noise ~out ~freq op in
  let gain = Ac.magnitude_at ~node:out op freq in
  if gain = 0. then raise Division_by_zero;
  Float.sqrt total /. gain

let integrated_output ~out ~fstart ~fstop ?(points_per_decade = 5) op =
  if fstart <= 0. || fstop <= fstart then
    invalid_arg "Noise.integrated_output: bad band";
  let n =
    max 2
      (1
      + int_of_float
          (Float.ceil
             (Float.log10 (fstop /. fstart)
             *. float_of_int points_per_decade)))
  in
  let freqs = Ape_util.Float_ext.logspace fstart fstop n in
  let psds =
    List.map (fun f -> fst (output_noise ~out ~freq:f op)) freqs
  in
  (* Trapezoidal integration on the linear frequency axis. *)
  let rec integrate acc = function
    | (f1, p1) :: ((f2, p2) :: _ as rest) ->
      integrate (acc +. (0.5 *. (p1 +. p2) *. (f2 -. f1))) rest
    | [ _ ] | [] -> acc
  in
  Float.sqrt (integrate 0. (List.combine freqs psds))
