lib/spice/transient.mli: Dc Engine
