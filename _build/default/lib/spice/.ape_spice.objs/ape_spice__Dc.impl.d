lib/spice/dc.ml: Ape_circuit Ape_device Ape_util Array Engine Float Format List String
