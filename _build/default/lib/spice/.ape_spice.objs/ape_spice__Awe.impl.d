lib/spice/awe.ml: Ape_circuit Ape_util Array Complex Dc Engine Float List
