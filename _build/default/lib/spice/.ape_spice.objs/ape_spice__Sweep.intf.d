lib/spice/sweep.mli: Ape_circuit Dc
