lib/spice/noise.ml: Ac Ape_circuit Ape_device Ape_process Ape_util Array Complex Dc Engine Float List
