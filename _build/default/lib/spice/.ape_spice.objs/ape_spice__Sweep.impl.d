lib/spice/sweep.ml: Ape_circuit Dc List String
