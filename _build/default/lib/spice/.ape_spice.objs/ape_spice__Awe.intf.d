lib/spice/awe.mli: Ape_circuit Complex Dc
