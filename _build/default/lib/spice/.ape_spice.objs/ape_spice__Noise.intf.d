lib/spice/noise.mli: Ape_circuit Dc
