lib/spice/transient.ml: Ape_circuit Ape_util Array Dc Engine Float List
