lib/spice/measure.mli: Ape_circuit Dc
