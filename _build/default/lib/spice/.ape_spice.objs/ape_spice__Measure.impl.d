lib/spice/measure.ml: Ac Ape_util Array Complex Float
