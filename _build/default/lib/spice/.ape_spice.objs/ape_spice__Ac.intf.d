lib/spice/ac.mli: Ape_circuit Complex Dc
