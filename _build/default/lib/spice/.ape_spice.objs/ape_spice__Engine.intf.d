lib/spice/engine.mli: Ape_circuit Ape_device Ape_util
