lib/spice/engine.ml: Ape_circuit Ape_device Ape_util Array Hashtbl List
