lib/spice/dc.mli: Ape_circuit Ape_device Engine Format
