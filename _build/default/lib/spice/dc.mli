(** DC operating-point analysis: damped Newton–Raphson with gmin stepping
    and a source-stepping fallback — the same continuation strategy SPICE
    uses. *)

type op = {
  netlist : Ape_circuit.Netlist.t;
  index : Engine.index;
  x : float array;  (** solution: node voltages then branch currents *)
  iterations : int;  (** Newton iterations of the final solve *)
}

exception No_convergence of string

val solve :
  ?max_iter:int ->
  ?tol_v:float ->
  ?tol_i:float ->
  ?x0:float array ->
  Ape_circuit.Netlist.t ->
  op
(** Raises {!No_convergence} if Newton, gmin stepping and source stepping
    all fail. *)

val voltage : op -> Ape_circuit.Netlist.node -> float

val branch_current : op -> string -> float option
(** Current through a named V-source/VCVS (SPICE sign: positive flows
    p→n inside the source). *)

val supply_current : op -> string -> float
(** Magnitude of the current delivered by the named V-source; raises
    [Not_found] for an unknown name.  Static power =
    supply voltage × this. *)

val static_power : op -> supply:string -> float
(** |V| · |I| of the named supply source. *)

val mosfet_regions :
  op -> (string * Ape_device.Mos.region * float) list
(** Per-MOSFET region and drain current at the operating point. *)

val pp : Format.formatter -> op -> unit
