(** Asymptotic Waveform Evaluation (Pillage & Rohrer 1990), the reduced-
    order evaluation technique the paper notes OBLX used for simulation
    inside its annealing loop (§3).

    From the linearised MNA system [(G + sC) x = b] the circuit moments
    are [m_0 = G⁻¹b], [m_k = −G⁻¹·C·m_{k−1}]; a [q]-pole Padé
    approximant of the output's transfer function is fitted to the first
    [2q] moments.  One LU factorisation of G serves all moments, which is
    why AWE evaluation is orders of magnitude cheaper than a full AC
    sweep — the ablation bench quantifies exactly that. *)

type approximant = {
  moments : float array;  (** μ_0 .. μ_{2q−1} of the chosen output *)
  poles : Complex.t list;  (** poles of the Padé denominator, 1/s units *)
  residues : Complex.t list;
  dc_value : float;  (** μ_0 — the DC transfer value *)
}

exception Moment_failure of string

val moments :
  ?count:int -> out:Ape_circuit.Netlist.node -> Dc.op -> float array
(** First [count] (default 8) output moments.  Raises {!Moment_failure}
    when G is singular. *)

val pade :
  ?q:int -> out:Ape_circuit.Netlist.node -> Dc.op -> approximant
(** Padé approximant with [q] poles (default 2, max [count/2]). *)

val dominant_pole_hz : approximant -> float option
(** Magnitude/2π of the slowest stable pole, i.e. the −3 dB estimate for
    a low-pass response. *)

val unity_gain_frequency_hz : approximant -> float option
(** UGF estimate from the single-pole model: |a0|·p1 when |a0| > 1. *)

val unity_crossing_hz :
  ?fmin:float -> ?fmax:float -> approximant -> float option
(** The |H(j2πf)| = 1 crossing of the full pole/residue expansion,
    located by bisection on the reduced model (no further matrix
    solves).  More accurate than {!unity_gain_frequency_hz} when the
    second pole is within a decade of the UGF. *)

val eval : approximant -> float -> Complex.t
(** Evaluate the pole/residue expansion at a frequency in Hz. *)
