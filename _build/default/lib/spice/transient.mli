(** Transient analysis.

    Fixed-step implicit integration (backward Euler by default,
    trapezoidal optionally) with a full Newton solve per step.  Source
    waveforms are supplied as functions of time keyed by source name
    ({!Engine.stimulus}), so the netlist itself stays purely structural.

    Used by the measurement layer for slew rate, settling/response time
    (S&H) and comparator/ADC delay. *)

type method_ = Backward_euler | Trapezoidal

type waveform = float -> float

val step : ?t0:float -> ?low:float -> high:float -> unit -> waveform
(** Step from [low] (default 0) to [high] at [t0] (default 0). *)

val pulse :
  ?delay:float ->
  ?rise:float ->
  low:float ->
  high:float ->
  width:float ->
  period:float ->
  unit ->
  waveform
(** Periodic trapezoidal pulse (SPICE PULSE-like, fall time = rise
    time, default rise 1 ns). *)

val sine : ?offset:float -> ampl:float -> freq:float -> unit -> waveform

type result = {
  times : float array;
  nodes : (string * float array) list;
      (** waveform samples for every non-ground node *)
}

exception Step_failed of float
(** Newton failed at the given time even after step cutting. *)

val run :
  ?method_:method_ ->
  ?max_newton:int ->
  stimulus:Engine.stimulus ->
  tstop:float ->
  dt:float ->
  Dc.op ->
  result
(** Integrate from the DC operating point [op] at fixed step [dt].  On a
    Newton failure the step is halved (up to 8 times) before
    {!Step_failed} is raised. *)

val samples : result -> string -> float array
(** Waveform of one node; raises [Not_found]. *)

val value_at : result -> string -> float -> float
(** Linear interpolation of one node's waveform. *)

val max_slope : result -> string -> float
(** max |dv/dt| between consecutive samples, V/s — used for slew rate. *)

val crossing_time :
  ?rising:bool -> result -> string -> level:float -> float option
(** First time the waveform crosses [level] (in the given direction),
    linearly interpolated. *)

val settling_time :
  result -> string -> final:float -> band:float -> float option
(** Earliest time after which the waveform stays within [band]
    (fractional, e.g. 0.02) of [final]. *)
