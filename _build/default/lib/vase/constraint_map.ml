module E = Ape_estimator

type stage_limit = { max_gain : float; area_per_gain : float }

let probe_stage_limit ?(bandwidth = 20e3) process =
  (* Feasible iff Opamp.design succeeds and realises the requested
     gain. *)
  let feasible gain =
    match
      E.Opamp.design process
        (E.Opamp.spec ~av:gain ~ugf:(gain *. bandwidth) ~ibias:1e-6 ())
    with
    | design -> Float.abs design.E.Opamp.gain >= 0.95 *. gain
    | exception E.Opamp.Infeasible _ -> false
  in
  (* Grow until infeasible, then bisect. *)
  let rec grow g = if feasible (2. *. g) && g < 1e6 then grow (2. *. g) else g in
  let lo = if feasible 10. then grow 10. else 1. in
  let hi = 2. *. lo in
  let max_gain =
    if not (feasible lo) then 1.
    else begin
      let rec bisect lo hi k =
        if k = 0 then lo
        else begin
          let mid = Float.sqrt (lo *. hi) in
          if feasible mid then bisect mid hi (k - 1) else bisect lo mid (k - 1)
        end
      in
      bisect lo hi 12
    end
  in
  let area_per_gain =
    match
      E.Opamp.design process
        (E.Opamp.spec ~av:(Float.min 100. max_gain)
           ~ugf:(Float.min 100. max_gain *. bandwidth)
           ~ibias:1e-6 ())
    with
    | d ->
      d.E.Opamp.perf.E.Perf.gate_area
      /. Float.log (Float.max 2. (Float.min 100. max_gain))
    | exception E.Opamp.Infeasible _ -> 1e-9
  in
  { max_gain; area_per_gain }

let allocate_gain ~total ~limits =
  if total <= 0. then invalid_arg "Constraint_map.allocate_gain: total <= 0";
  let n = List.length limits in
  if n = 0 then None
  else begin
    let capacity =
      List.fold_left (fun acc l -> acc *. l.max_gain) 1. limits
    in
    if capacity < total then None
    else begin
      (* Directed allocation: clamp saturated stages, re-split the
         remaining log-gain over the others, iterate to fixpoint. *)
      let log_total = Float.log total in
      let assigned = Array.make n 0. in
      let clamped = Array.make n false in
      let limits_arr = Array.of_list limits in
      let rec iterate k =
        if k = 0 then ()
        else begin
          let free = Array.to_list clamped |> List.filter not |> List.length in
          if free = 0 then ()
          else begin
            let used_log = ref 0. in
            Array.iteri
              (fun i a -> if clamped.(i) then used_log := !used_log +. Float.log a)
              assigned;
            let used_log = !used_log in
            let per_stage = (log_total -. used_log) /. float_of_int free in
            let changed = ref false in
            Array.iteri
              (fun i limit ->
                if not clamped.(i) then begin
                  let g = Float.exp per_stage in
                  if g > limit.max_gain then begin
                    assigned.(i) <- limit.max_gain;
                    clamped.(i) <- true;
                    changed := true
                  end
                  else assigned.(i) <- Float.max 1. g
                end)
              limits_arr;
            if !changed then iterate (k - 1)
          end
        end
      in
      iterate n;
      Some (Array.to_list assigned)
    end
  end

let allocate_bandwidth ~total ~stages =
  if stages < 1 then invalid_arg "Constraint_map.allocate_bandwidth";
  let n = float_of_int stages in
  total /. Float.sqrt ((2. ** (1. /. n)) -. 1.)
