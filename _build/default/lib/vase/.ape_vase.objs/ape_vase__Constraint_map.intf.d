lib/vase/constraint_map.mli: Ape_process
