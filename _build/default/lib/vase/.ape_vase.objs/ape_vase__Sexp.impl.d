lib/vase/sexp.ml: Ape_symbolic Buffer List String
