lib/vase/sexp.mli:
