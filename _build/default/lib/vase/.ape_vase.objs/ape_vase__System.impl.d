lib/vase/system.ml: Ape_estimator Constraint_map Float List Option Printf Sexp
