lib/vase/constraint_map.ml: Ape_estimator Array Float List
