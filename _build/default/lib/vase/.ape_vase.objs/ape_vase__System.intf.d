lib/vase/system.mli: Ape_estimator Ape_process
