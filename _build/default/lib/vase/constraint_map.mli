(** Hierarchical constraint transformation (the VASE pass of paper
    ref [5]): allocate system-level requirements onto the modules of an
    architecture using a directed interval search guided by APE
    feasibility probes.

    For a cascade of gain stages the total gain is a product and the
    bandwidth a minimum; the allocator starts from an equal split in log
    space and moves gain away from stages that APE reports infeasible,
    shrinking the search interval in the direction that restores
    feasibility. *)

type stage_limit = {
  max_gain : float;  (** largest per-stage gain APE can realise *)
  area_per_gain : float;  (** m² per unit log-gain, for cost weighting *)
}

val probe_stage_limit :
  ?bandwidth:float -> Ape_process.Process.t -> stage_limit
(** Binary-search the largest gain a single opamp stage can deliver at
    the given bandwidth (default 20 kHz). *)

val allocate_gain :
  total:float -> limits:stage_limit list -> float list option
(** Per-stage gains whose product covers [total], each within its
    limit; [None] when the architecture cannot reach the total.  The
    split is even in log space across stages, after clamping saturated
    stages to their limits (directed reallocation). *)

val allocate_bandwidth : total:float -> stages:int -> float
(** Per-stage bandwidth so the cascade keeps [total]:
    BW_stage = BW_total / sqrt(2^(1/n) − 1). *)
