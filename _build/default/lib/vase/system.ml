module E = Ape_estimator

type module_decl = { label : string; spec : E.Module_lib.spec }

type requirements = {
  total_gain : float option;
  bandwidth : float option;
  area_max : float option;
  power_max : float option;
}

type t = {
  name : string;
  chain : module_decl list;
  requirements : requirements;
}

exception Spec_error of string

let need_number items key label =
  match Sexp.assoc_number key items with
  | Some v -> v
  | None ->
    raise (Spec_error (Printf.sprintf "%s: missing (%s <value>)" label key))

let parse_module idx = function
  | Sexp.List (Sexp.Atom kind :: fields) -> (
    let label = Printf.sprintf "%s%d" kind (idx + 1) in
    let num key = need_number fields key label in
    let opt key = Sexp.assoc_number key fields in
    match kind with
    | "lowpass" ->
      {
        label;
        spec =
          E.Module_lib.Lowpass_m
            {
              E.Filter.order = int_of_float (num "order");
              f_cutoff = num "fc";
              r_base =
                Option.value ~default:1e6 (opt "r");
            };
      }
    | "bandpass" ->
      {
        label;
        spec =
          E.Module_lib.Bandpass_m
            {
              E.Filter.f_center = num "fc";
              q = Option.value ~default:1. (opt "q");
              gain = Option.value ~default:1.5 (opt "gain");
              c_base = Option.value ~default:10e-9 (opt "c");
            };
      }
    | "amplifier" ->
      {
        label;
        spec =
          E.Module_lib.Audio_amp
            { gain = num "gain"; bandwidth = num "bandwidth" };
      }
    | "sample_hold" ->
      {
        label;
        spec =
          E.Module_lib.Sample_hold_m
            (E.Sample_hold.spec ~gain:(Option.value ~default:1. (opt "gain"))
               ~bandwidth:(num "bandwidth")
               ~sr:(Option.value ~default:1e4 (opt "sr"))
               ());
      }
    | "adc" ->
      {
        label;
        spec =
          E.Module_lib.Flash_adc_m
            (E.Data_conv.Flash_adc.spec
               ~bits:(int_of_float (num "bits"))
               ~delay:(num "delay") ());
      }
    | "dac" ->
      {
        label;
        spec =
          E.Module_lib.Dac_m
            (E.Data_conv.Dac.spec
               ~bits:(int_of_float (num "bits"))
               ~settling:(num "settling") ());
      }
    | "integrator" ->
      {
        label;
        spec =
          E.Module_lib.Closed_loop_m
            (E.Closed_loop.spec
               ~bandwidth:(2. *. num "funity")
               (E.Closed_loop.Integrator { f_unity = num "funity" }));
      }
    | "comparator" ->
      {
        label;
        spec =
          E.Module_lib.Comparator_m
            (E.Data_conv.Comparator.spec ~delay:(num "delay") ());
      }
    | other -> raise (Spec_error ("unknown module kind " ^ other)))
  | other ->
    raise (Spec_error ("bad module declaration " ^ Sexp.to_string other))

let parse text =
  match Sexp.parse text with
  | [ Sexp.List (Sexp.Atom "system" :: Sexp.Atom name :: body) ] ->
    let chain =
      match Sexp.assoc "chain" body with
      | Some modules -> List.mapi parse_module modules
      | None -> raise (Spec_error "missing (chain ...)")
    in
    let requirements =
      match Sexp.assoc "require" body with
      | None ->
        {
          total_gain = None;
          bandwidth = None;
          area_max = None;
          power_max = None;
        }
      | Some fields ->
        {
          total_gain = Sexp.assoc_number "total_gain" fields;
          bandwidth = Sexp.assoc_number "bandwidth" fields;
          area_max = Sexp.assoc_number "area_max" fields;
          power_max = Sexp.assoc_number "power_max" fields;
        }
    in
    { name; chain; requirements }
  | _ -> raise (Spec_error "expected a single (system <name> ...) form")

type estimated = {
  system : t;
  designs : (string * E.Module_lib.design) list;
  gain_total : float;
  bandwidth_min : float;
  area_total : float;
  power_total : float;
  meets : (string * bool) list;
}

let estimate process system =
  let designs =
    List.map
      (fun decl -> (decl.label, E.Module_lib.design process decl.spec))
      system.chain
  in
  let perfs = List.map (fun (_, d) -> E.Module_lib.perf d) designs in
  let gain_total =
    List.fold_left
      (fun acc (p : E.Perf.t) ->
        match p.E.Perf.gain with
        | Some g -> acc *. Float.abs g
        | None -> acc)
      1. perfs
  in
  let bandwidth_min =
    List.fold_left
      (fun acc (p : E.Perf.t) ->
        match p.E.Perf.bandwidth with
        | Some b -> Float.min acc b
        | None -> acc)
      infinity perfs
  in
  let area_total =
    List.fold_left (fun acc (p : E.Perf.t) -> acc +. p.E.Perf.gate_area) 0. perfs
  in
  let power_total =
    List.fold_left (fun acc (p : E.Perf.t) -> acc +. p.E.Perf.dc_power) 0. perfs
  in
  let check name = function
    | None -> []
    | Some verdict -> [ (name, verdict) ]
  in
  let meets =
    check "total_gain"
      (Option.map (fun g -> gain_total >= g) system.requirements.total_gain)
    @ check "bandwidth"
        (Option.map
           (fun b -> bandwidth_min >= b)
           system.requirements.bandwidth)
    @ check "area_max"
        (Option.map (fun a -> area_total <= a) system.requirements.area_max)
    @ check "power_max"
        (Option.map (fun p -> power_total <= p) system.requirements.power_max)
  in
  { system; designs; gain_total; bandwidth_min; area_total; power_total; meets }

let plan_gain_chain process ~total_gain ~bandwidth ~stages =
  if stages < 1 then invalid_arg "System.plan_gain_chain";
  let stage_bw = Constraint_map.allocate_bandwidth ~total:bandwidth ~stages in
  let limit = Constraint_map.probe_stage_limit ~bandwidth:stage_bw process in
  Constraint_map.allocate_gain ~total:total_gain
    ~limits:(List.init stages (fun _ -> limit))
