type t = Atom of string | List of t list

exception Parse_error of string

let tokenize text =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := `Atom (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    (match text.[!i] with
    | ';' ->
      flush ();
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    | '(' ->
      flush ();
      tokens := `Open :: !tokens
    | ')' ->
      flush ();
      tokens := `Close :: !tokens
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let parse text =
  let rec parse_list acc = function
    | [] -> (List.rev acc, [])
    | `Close :: rest -> (List.rev acc, rest)
    | `Open :: rest ->
      let inner, rest = parse_nested rest in
      parse_list (List inner :: acc) rest
    | `Atom a :: rest -> parse_list (Atom a :: acc) rest
  and parse_nested tokens =
    match parse_list [] tokens with
    | items, rest -> (items, rest)
  in
  let rec top acc = function
    | [] -> List.rev acc
    | `Open :: rest ->
      let inner, rest = parse_nested rest in
      top (List inner :: acc) rest
    | `Atom a :: rest -> top (Atom a :: acc) rest
    | `Close :: _ -> raise (Parse_error "unbalanced ')'")
  in
  top [] (tokenize text)

let rec to_string = function
  | Atom a -> a
  | List items -> "(" ^ String.concat " " (List.map to_string items) ^ ")"

let atom = function
  | Atom a -> a
  | List _ as l -> raise (Parse_error ("expected atom, got " ^ to_string l))

let number s =
  let a = atom s in
  match Ape_symbolic.Parser.parse_number a with
  | Some v -> v
  | None -> raise (Parse_error ("expected number, got " ^ a))

let assoc key items =
  List.find_map
    (function
      | List (Atom k :: rest) when String.equal k key -> Some rest
      | List _ | Atom _ -> None)
    items

let assoc_number key items =
  match assoc key items with
  | Some [ v ] -> Some (number v)
  | Some _ | None -> None

let assoc_atom key items =
  match assoc key items with
  | Some [ Atom v ] -> Some v
  | Some _ | None -> None
