(** Minimal S-expression reader for the system-specification language
    (the role the VHDL-AMS subset plays in VASE's front end, Figure 1). *)

type t = Atom of string | List of t list

exception Parse_error of string

val parse : string -> t list
(** Parse a sequence of top-level S-expressions.  Comments run from [;]
    to end of line. *)

val to_string : t -> string

val atom : t -> string
(** Raises {!Parse_error} when not an atom. *)

val number : t -> float
(** Atom as a SPICE-style number ("4.7k", "10u"). *)

val assoc : string -> t list -> t list option
(** [assoc key items] finds [(key a b c)] among [items] and returns
    [[a; b; c]]. *)

val assoc_number : string -> t list -> float option
val assoc_atom : string -> t list -> string option
