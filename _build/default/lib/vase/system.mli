(** System-level specification and architecture estimation — the VASE
    flow of the paper's Figure 1: a behavioural spec is compiled to a
    net-list of library modules, system constraints are transformed onto
    the modules, and APE estimates guide the result.

    Spec language (S-expressions, SPICE-style numbers):
    {v
    (system audio_front_end
      (chain
        (lowpass  (order 4) (fc 1k))
        (amplifier (gain 40) (bandwidth 20k))
        (amplifier (gain 2.5) (bandwidth 20k)))
      (require (total_gain 100) (bandwidth 18k) (area_max 100000u)))
    v}
    Module kinds: [lowpass], [bandpass], [amplifier], [sample_hold],
    [adc], [dac], [integrator], [comparator]. *)

type module_decl = { label : string; spec : Ape_estimator.Module_lib.spec }

type requirements = {
  total_gain : float option;
  bandwidth : float option;
  area_max : float option;
  power_max : float option;
}

type t = {
  name : string;
  chain : module_decl list;
  requirements : requirements;
}

exception Spec_error of string

val parse : string -> t
(** Raises {!Spec_error} (or {!Sexp.Parse_error}) on malformed input. *)

type estimated = {
  system : t;
  designs : (string * Ape_estimator.Module_lib.design) list;
  gain_total : float;  (** product of stage gains (absolute values) *)
  bandwidth_min : float;  (** slowest stage bandwidth *)
  area_total : float;
  power_total : float;
  meets : (string * bool) list;
      (** per-requirement verdicts: total_gain, bandwidth, area, power *)
}

val estimate : Ape_process.Process.t -> t -> estimated
(** Run APE over every module of the architecture and check the system
    requirements against the composed estimates. *)

val plan_gain_chain :
  Ape_process.Process.t ->
  total_gain:float ->
  bandwidth:float ->
  stages:int ->
  float list option
(** Constraint transformation for an amplifier cascade: per-stage gain
    allocation (see {!Constraint_map}). *)
