type equation = { lhs : Expr.t; rhs : Expr.t }

let equation lhs rhs = { lhs; rhs }
let residual { lhs; rhs } = Expr.Sub (lhs, rhs)

exception No_solution of string

let check_vars ~var ~env e =
  let unbound =
    Expr.vars e
    |> List.filter (fun v ->
           (not (String.equal v var)) && Expr.Env.find_opt v env = None)
  in
  match unbound with
  | [] -> ()
  | vs -> raise (No_solution ("unbound variables: " ^ String.concat ", " vs))

let eval_at ~var ~env e x = Expr.eval (Expr.Env.add var x env) e

let solve_for ?(lo = 1e-12) ?(hi = 1e12) ?guess ~var ~env eqn =
  let res = Expr.simplify (residual eqn) in
  check_vars ~var ~env res;
  let f x =
    try eval_at ~var ~env res x with
    | Expr.Domain_error _ -> Float.nan
  in
  let dres = Expr.simplify (Expr.diff var res) in
  let df x =
    try eval_at ~var ~env dres x with
    | Expr.Domain_error _ -> Float.nan
  in
  let x0 = match guess with Some g -> g | None -> Float.sqrt (lo *. hi) in
  let newton_result =
    try
      let f_clean x =
        let v = f x in
        if Float.is_nan v then raise Ape_util.Rootfind.No_convergence else v
      in
      let df_clean x =
        let v = df x in
        if Float.is_nan v then raise Ape_util.Rootfind.No_convergence else v
      in
      let x = Ape_util.Rootfind.newton ~f:f_clean ~df:df_clean x0 in
      if Float.abs (f x) <= 1e-9 *. (1. +. Float.abs x) then Some x else None
    with
    | Ape_util.Rootfind.No_convergence -> None
  in
  match newton_result with
  | Some x -> x
  | None -> (
    let f_finite x =
      let v = f x in
      if Float.is_nan v then infinity else v
    in
    try
      let lo, hi = Ape_util.Rootfind.expand_bracket f_finite lo hi in
      Ape_util.Rootfind.brent f_finite lo hi
    with
    | Ape_util.Rootfind.No_bracket ->
      raise (No_solution "no sign change found in search range"))

let solve_system_1d ~var ~env = function
  | [] -> raise (No_solution "empty system")
  | first :: rest ->
    let x = solve_for ~var ~env first in
    let env_x = Expr.Env.add var x env in
    List.iter
      (fun eqn ->
        let l = Expr.eval env_x eqn.lhs and r = Expr.eval env_x eqn.rhs in
        if not (Ape_util.Float_ext.approx_equal ~rtol:1e-3 ~atol:1e-9 l r)
        then
          raise
            (No_solution
               (Format.asprintf "inconsistent equation %a = %a (%.6g <> %.6g)"
                  Expr.pp eqn.lhs Expr.pp eqn.rhs l r)))
      rest;
    x

let sensitivity ~var ~env e =
  let x =
    match Expr.Env.find_opt var env with
    | Some v -> v
    | None -> raise (Expr.Unbound_variable var)
  in
  let fv = Expr.eval env e in
  if fv = 0. then raise (Expr.Domain_error "sensitivity at f = 0");
  let dfv = Expr.eval env (Expr.diff var e) in
  x /. fv *. dfv
