type t =
  | Const of float
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * float
  | Sqrt of t
  | Abs of t
  | Log of t
  | Exp of t

let const c = Const c
let var name = Var name
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
let ( / ) a b = Div (a, b)
let ( ** ) a e = Pow (a, e)
let neg a = Neg a
let sqrt a = Sqrt a
let abs a = Abs a
let log a = Log a
let exp a = Exp a

module String_map = Map.Make (String)

module Env = struct
  type t = float String_map.t

  let empty = String_map.empty
  let of_list l = List.fold_left (fun m (k, v) -> String_map.add k v m) empty l
  let add = String_map.add
  let find_opt = String_map.find_opt
  let bindings = String_map.bindings

  let pp fmt t =
    Format.fprintf fmt "{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Format.fprintf fmt ", ";
        Format.fprintf fmt "%s=%g" k v)
      (bindings t);
    Format.fprintf fmt "}"
end

exception Unbound_variable of string
exception Domain_error of string

let rec eval env e =
  match e with
  | Const c -> c
  | Var name -> (
    match Env.find_opt name env with
    | Some v -> v
    | None -> raise (Unbound_variable name))
  | Neg a -> Stdlib.( ~-. ) (eval env a)
  | Add (a, b) -> Stdlib.( +. ) (eval env a) (eval env b)
  | Sub (a, b) -> Stdlib.( -. ) (eval env a) (eval env b)
  | Mul (a, b) -> Stdlib.( *. ) (eval env a) (eval env b)
  | Div (a, b) ->
    let d = eval env b in
    if d = 0. then raise (Domain_error "division by zero")
    else Stdlib.( /. ) (eval env a) d
  | Pow (a, p) ->
    let base = eval env a in
    if base < 0. && not (Float.is_integer p) then
      raise (Domain_error "negative base, fractional exponent")
    else Stdlib.( ** ) base p
  | Sqrt a ->
    let v = eval env a in
    if v < 0. then raise (Domain_error "sqrt of negative") else Float.sqrt v
  | Abs a -> Float.abs (eval env a)
  | Log a ->
    let v = eval env a in
    if v <= 0. then raise (Domain_error "log of non-positive")
    else Float.log v
  | Exp a -> Float.exp (eval env a)

module String_set = Set.Make (String)

let vars e =
  let rec collect acc = function
    | Const _ -> acc
    | Var name -> String_set.add name acc
    | Neg a | Sqrt a | Abs a | Log a | Exp a | Pow (a, _) -> collect acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      collect (collect acc a) b
  in
  String_set.elements (collect String_set.empty e)

let rec subst name replacement e =
  let s = subst name replacement in
  match e with
  | Const _ -> e
  | Var n -> if String.equal n name then replacement else e
  | Neg a -> Neg (s a)
  | Add (a, b) -> Add (s a, s b)
  | Sub (a, b) -> Sub (s a, s b)
  | Mul (a, b) -> Mul (s a, s b)
  | Div (a, b) -> Div (s a, s b)
  | Pow (a, p) -> Pow (s a, p)
  | Sqrt a -> Sqrt (s a)
  | Abs a -> Abs (s a)
  | Log a -> Log (s a)
  | Exp a -> Exp (s a)

(* d/dx of each constructor; Abs differentiates to sign(a)·a' which we
   express as a / |a| · a'. *)
let rec diff name e =
  let d = diff name in
  match e with
  | Const _ -> Const 0.
  | Var n -> if String.equal n name then Const 1. else Const 0.
  | Neg a -> Neg (d a)
  | Add (a, b) -> Add (d a, d b)
  | Sub (a, b) -> Sub (d a, d b)
  | Mul (a, b) -> Add (Mul (d a, b), Mul (a, d b))
  | Div (a, b) -> Div (Sub (Mul (d a, b), Mul (a, d b)), Mul (b, b))
  | Pow (a, p) -> Mul (Mul (Const p, Pow (a, Stdlib.( -. ) p 1.)), d a)
  | Sqrt a -> Div (d a, Mul (Const 2., Sqrt a))
  | Abs a -> Mul (Div (a, Abs a), d a)
  | Log a -> Div (d a, a)
  | Exp a -> Mul (Exp a, d a)

let rec simplify e =
  let e =
    match e with
    | Const _ | Var _ -> e
    | Neg a -> Neg (simplify a)
    | Add (a, b) -> Add (simplify a, simplify b)
    | Sub (a, b) -> Sub (simplify a, simplify b)
    | Mul (a, b) -> Mul (simplify a, simplify b)
    | Div (a, b) -> Div (simplify a, simplify b)
    | Pow (a, p) -> Pow (simplify a, p)
    | Sqrt a -> Sqrt (simplify a)
    | Abs a -> Abs (simplify a)
    | Log a -> Log (simplify a)
    | Exp a -> Exp (simplify a)
  in
  match e with
  | Neg (Const c) -> Const (Stdlib.( ~-. ) c)
  | Neg (Neg a) -> a
  | Add (Const a, Const b) -> Const (Stdlib.( +. ) a b)
  | Add (Const 0., a) | Add (a, Const 0.) -> a
  | Sub (Const a, Const b) -> Const (Stdlib.( -. ) a b)
  | Sub (a, Const 0.) -> a
  | Sub (Const 0., a) -> Neg a
  | Mul (Const a, Const b) -> Const (Stdlib.( *. ) a b)
  | Mul (Const 0., _) | Mul (_, Const 0.) -> Const 0.
  | Mul (Const 1., a) | Mul (a, Const 1.) -> a
  | Div (Const 0., _) -> Const 0.
  | Div (a, Const 1.) -> a
  | Div (Const a, Const b) when b <> 0. -> Const (Stdlib.( /. ) a b)
  | Pow (_, 0.) -> Const 1.
  | Pow (a, 1.) -> a
  | Pow (Const c, p) when c >= 0. -> Const (Stdlib.( ** ) c p)
  | Sqrt (Const c) when c >= 0. -> Const (Float.sqrt c)
  | Abs (Const c) -> Const (Float.abs c)
  | Log (Const 1.) -> Const 0.
  | Exp (Const 0.) -> Const 1.
  | other -> other

let equal a b = simplify a = simplify b

(* Precedence: Add/Sub = 1, Mul/Div = 2, unary = 3, Pow = 4. *)
let rec pp_prec prec fmt e =
  let paren p body =
    if Stdlib.( < ) p prec then Format.fprintf fmt "(%t)" body
    else body fmt
  in
  match e with
  | Const c ->
    (* Shortest representation that reparses to the same float. *)
    let repr =
      let short = Printf.sprintf "%g" c in
      if float_of_string short = c then short else Printf.sprintf "%.17g" c
    in
    if c < 0. then Format.fprintf fmt "(%s)" repr
    else Format.pp_print_string fmt repr
  | Var name -> Format.pp_print_string fmt name
  | Add (a, b) ->
    paren 1 (fun fmt ->
        Format.fprintf fmt "%a + %a" (pp_prec 1) a (pp_prec 1) b)
  | Sub (a, b) ->
    paren 1 (fun fmt ->
        Format.fprintf fmt "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
    paren 2 (fun fmt ->
        Format.fprintf fmt "%a * %a" (pp_prec 2) a (pp_prec 2) b)
  | Div (a, b) ->
    paren 2 (fun fmt ->
        Format.fprintf fmt "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Neg a -> paren 3 (fun fmt -> Format.fprintf fmt "-%a" (pp_prec 3) a)
  | Pow (a, p) ->
    paren 4 (fun fmt -> Format.fprintf fmt "%a^%g" (pp_prec 4) a p)
  | Sqrt a -> Format.fprintf fmt "sqrt(%a)" (pp_prec 0) a
  | Abs a -> Format.fprintf fmt "abs(%a)" (pp_prec 0) a
  | Log a -> Format.fprintf fmt "log(%a)" (pp_prec 0) a
  | Exp a -> Format.fprintf fmt "exp(%a)" (pp_prec 0) a

let pp fmt e = pp_prec 0 fmt e
let to_string e = Format.asprintf "%a" pp e
