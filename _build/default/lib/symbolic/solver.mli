(** Solving the estimator's symbolic equations.

    The paper's sizing process "consists in solving these symbolic
    equations such that the constraints are met" (§4.1).  For the
    closed-form cases the estimator inverts equations directly; for the
    rest this module provides numeric inversion of a single unknown with
    symbolic-derivative Newton and a bracketing fallback. *)

type equation = { lhs : Expr.t; rhs : Expr.t }
(** An equation [lhs = rhs]. *)

val equation : Expr.t -> Expr.t -> equation

val residual : equation -> Expr.t
(** [lhs - rhs]. *)

exception No_solution of string

val solve_for :
  ?lo:float ->
  ?hi:float ->
  ?guess:float ->
  var:string ->
  env:Expr.Env.t ->
  equation ->
  float
(** [solve_for ~var ~env eqn] finds a value of [var] making the equation
    hold, with every other free variable bound by [env].

    Strategy: symbolic-derivative Newton from [guess] (default: midpoint
    of [[lo, hi]] or 1.0), falling back to Brent on the expanding bracket
    [[lo, hi]] (defaults [1e-12, 1e12]).  Raises {!No_solution} when both
    fail or the equation has remaining unbound variables. *)

val solve_system_1d :
  var:string ->
  env:Expr.Env.t ->
  equation list ->
  float
(** Least-squares-free exact solve of several equations sharing one
    unknown: solves the first and checks the rest hold within 0.1 %
    (raises {!No_solution} otherwise).  Used to cross-check redundant
    composition equations. *)

val sensitivity :
  var:string -> env:Expr.Env.t -> Expr.t -> float
(** Normalised sensitivity [ (x / f) * df/dx ] evaluated at [env]; the
    classic first-order design sensitivity.  Raises [Division_by_zero]
    via {!Expr.Domain_error} when [f] evaluates to 0. *)
