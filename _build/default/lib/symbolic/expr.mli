(** Symbolic expressions.

    APE's performance models are "symbolic equations which relate the
    performance of the components to the circuit topology" (paper §4).
    This module gives those equations a first-class representation so the
    estimator can evaluate them, differentiate them for sensitivities, and
    invert them during sizing. *)

type t =
  | Const of float
  | Var of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Pow of t * float  (** real exponent *)
  | Sqrt of t
  | Abs of t
  | Log of t  (** natural log *)
  | Exp of t

(** {1 Construction helpers} *)

val const : float -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ** ) : t -> float -> t
val neg : t -> t
val sqrt : t -> t
val abs : t -> t
val log : t -> t
val exp : t -> t

(** {1 Environments} *)

module Env : sig
  type t

  val empty : t
  val of_list : (string * float) list -> t
  val add : string -> float -> t -> t
  val find_opt : string -> t -> float option
  val bindings : t -> (string * float) list
  val pp : Format.formatter -> t -> unit
end

exception Unbound_variable of string
exception Domain_error of string
(** Raised on sqrt/log/div of values outside the function domain. *)

(** {1 Operations} *)

val eval : Env.t -> t -> float
(** Raises {!Unbound_variable} or {!Domain_error}. *)

val vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val subst : string -> t -> t -> t
(** [subst name replacement e] substitutes every occurrence. *)

val diff : string -> t -> t
(** Symbolic partial derivative. *)

val simplify : t -> t
(** Constant folding and algebraic identity elimination.  Idempotent. *)

val equal : t -> t -> bool
(** Structural equality after simplification. *)

val pp : Format.formatter -> t -> unit
(** Infix rendering with minimal parentheses; re-parseable by
    {!Parser.parse}. *)

val to_string : t -> string
