(** Infix expression parser.

    Grammar (precedence climbing):
    {v
      expr   := term (('+' | '-') term)*
      term   := unary (('*' | '/') unary)*
      unary  := '-' unary | power
      power  := atom ('^' number)?
      atom   := number | ident | ident '(' expr ')' | '(' expr ')'
    v}
    Recognised functions: [sqrt], [abs], [log], [exp].  Numbers accept
    scientific notation and trailing SI prefixes ([2.5u], [10k], [1.3MEG]
    in SPICE style). *)

exception Parse_error of string * int
(** Message and character position. *)

val parse : string -> Expr.t
(** Raises {!Parse_error}. *)

val parse_number : string -> float option
(** Parse a standalone SPICE-style number with optional SI suffix:
    ["4.7k"], ["10u"], ["2MEG"], ["1e-3"]. *)
