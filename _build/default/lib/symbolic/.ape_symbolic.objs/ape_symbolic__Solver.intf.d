lib/symbolic/solver.mli: Expr
