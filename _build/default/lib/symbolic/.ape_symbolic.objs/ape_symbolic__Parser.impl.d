lib/symbolic/parser.ml: Array Expr List Printf String
