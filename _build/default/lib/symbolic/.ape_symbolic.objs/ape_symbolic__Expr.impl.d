lib/symbolic/expr.ml: Float Format List Map Printf Set Stdlib String
