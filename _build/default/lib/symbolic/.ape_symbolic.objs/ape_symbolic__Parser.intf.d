lib/symbolic/parser.mli: Expr
