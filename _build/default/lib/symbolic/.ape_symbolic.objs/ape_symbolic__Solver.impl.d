lib/symbolic/solver.ml: Ape_util Expr Float Format List String
