(** Level-4 data-conversion modules: comparator, flash ADC (paper
    Figure 3e, Table 5 adc row) and an R-2R DAC.

    The flash converter is the analog core the paper evaluates: a
    resistor reference ladder and 2ⁿ−1 open-loop comparators.  The
    thermometer-to-binary encoder is digital and contributes neither to
    the analog delay nor (materially) to the analog area; it is excluded
    from the metrics exactly as the paper's area/delay columns imply. *)

module Comparator : sig
  type spec = {
    delay : float;  (** required response time, s *)
    overdrive : float;  (** input overdrive at which delay is specified, V *)
  }

  val spec : ?overdrive:float -> delay:float -> unit -> spec
  (** Default overdrive 50 mV. *)

  type design = {
    spec : spec;
    opamp : Opamp.design;  (** used open-loop *)
    delay_est : float;  (** slew + linear regeneration estimate, s *)
    perf : Perf.t;
  }

  val design : Ape_process.Process.t -> spec -> design

  val fragment : Ape_process.Process.t -> design -> Fragment.t
  (** Ports: [vdd], [inp], [inn], [out]. *)
end

module Flash_adc : sig
  type spec = {
    bits : int;  (** 2..6 supported *)
    delay : float;  (** conversion delay requirement, s *)
    r_ladder : float;  (** total ladder resistance, Ω *)
    vref_lo : float;  (** bottom of the conversion range, V *)
    vref_hi : float;  (** top of the conversion range, V *)
  }

  val spec :
    ?r_ladder:float ->
    ?vref_lo:float ->
    ?vref_hi:float ->
    bits:int ->
    delay:float ->
    unit ->
    spec
  (** The reference window defaults to [1 V, 4 V]: the NMOS-input
      comparators need common mode above ~1 V (flash converters always
      define an explicit reference range). *)

  type design = {
    spec : spec;
    comparator : Comparator.design;  (** replicated 2ⁿ−1 times *)
    r_unit : float;  (** per-segment ladder resistance *)
    levels : float list;  (** ladder tap voltages, ascending *)
    delay_est : float;
    perf : Perf.t;
  }

  val design : Ape_process.Process.t -> spec -> design

  val fragment : Ape_process.Process.t -> design -> Fragment.t
  (** Ports: [vdd], [in], and thermometer outputs [t1] … [t(2ⁿ−1)];
      [out] aliases the mid comparator. *)
end

module Dac : sig
  type spec = {
    bits : int;
    settling : float;  (** required settling time, s *)
    r_unit : float;  (** R of the R-2R ladder, Ω *)
  }

  val spec : ?r_unit:float -> bits:int -> settling:float -> unit -> spec

  type design = {
    spec : spec;
    buffer : Opamp.design;  (** unity-feedback output buffer *)
    settling_est : float;
    perf : Perf.t;
  }

  val design : Ape_process.Process.t -> spec -> design

  val fragment : Ape_process.Process.t -> design -> Fragment.t
  (** Ports: [vdd], bit inputs [b0] (LSB) … [b(n−1)], [out]. *)
end
