module Proc = Ape_process.Process
module B = Ape_circuit.Builder

module Comparator = struct
  type spec = { delay : float; overdrive : float }

  let spec ?(overdrive = 50e-3) ~delay () = { delay; overdrive }

  type design = {
    spec : spec;
    opamp : Opamp.design;
    delay_est : float;
    perf : Perf.t;
  }

  let design (process : Proc.t) spec =
    if spec.delay <= 0. then invalid_arg "Comparator.design: delay <= 0";
    let vdd = process.Proc.vdd in
    let half_swing = vdd /. 2. in
    (* Resolution: enough gain to rail from the specified overdrive.
       Speed: at an input overdrive v_od the first stage delivers only
       gm·v_od into the compensation node, so the output transition is
       linear-regime limited: t ≈ half_swing·C/(gm·v_od)
       = half_swing/(2π·UGF·v_od).  60 % of the budget goes there, the
       rest covers slew. *)
    let av_req = 2. *. vdd /. spec.overdrive in
    let ugf_req =
      half_swing /. (2. *. Float.pi *. spec.overdrive *. 0.6 *. spec.delay)
    in
    let sr_req = half_swing /. (0.4 *. spec.delay) in
    let opamp =
      Opamp.design process
        (Opamp.spec ~av:av_req ~ugf:ugf_req ~sr:sr_req ~ibias:1e-6
           ~cl:0.5e-12 ())
    in
    let sr_real =
      match opamp.Opamp.perf.Perf.slew_rate with
      | Some s -> s
      | None -> sr_req
    in
    let delay_est =
      (half_swing /. (2. *. Float.pi *. opamp.Opamp.ugf *. spec.overdrive))
      +. (half_swing /. sr_real)
    in
    let perf =
      {
        opamp.Opamp.perf with
        Perf.slew_rate = Some sr_real;
        bandwidth = Some (1. /. delay_est);
      }
    in
    { spec; opamp; delay_est; perf }

  let fragment (process : Proc.t) design =
    Opamp.fragment process design.opamp
end

module Flash_adc = struct
  type spec = {
    bits : int;
    delay : float;
    r_ladder : float;
    vref_lo : float;
    vref_hi : float;
  }

  (* The NMOS-input comparators need ~1 V of input common mode above
     ground, so the conversion range defaults to [1 V, 4 V] — flash
     converters always define an explicit reference window. *)
  let spec ?(r_ladder = 100e3) ?(vref_lo = 1.0) ?(vref_hi = 4.0) ~bits
      ~delay () =
    if vref_hi <= vref_lo then invalid_arg "Flash_adc.spec: bad vref range";
    { bits; delay; r_ladder; vref_lo; vref_hi }

  type design = {
    spec : spec;
    comparator : Comparator.design;
    r_unit : float;
    levels : float list;
    delay_est : float;
    perf : Perf.t;
  }

  let design (process : Proc.t) spec =
    if spec.bits < 2 || spec.bits > 6 then
      invalid_arg "Flash_adc.design: bits out of [2, 6]";
    let n_levels = (1 lsl spec.bits) - 1 in
    let vdd = process.Proc.vdd in
    let lsb = (spec.vref_hi -. spec.vref_lo) /. float_of_int (1 lsl spec.bits) in
    let comparator =
      Comparator.design process
        (Comparator.spec ~overdrive:(lsb /. 2.) ~delay:spec.delay ())
    in
    let r_unit = spec.r_ladder *. lsb /. vdd in
    let levels =
      List.init n_levels (fun k ->
          spec.vref_lo +. (float_of_int (k + 1) *. lsb))
    in
    let n = float_of_int n_levels in
    let comp_perf = comparator.Comparator.perf in
    let ladder_power = vdd *. vdd /. spec.r_ladder in
    let perf =
      {
        Perf.empty with
        Perf.gate_area = n *. comp_perf.Perf.gate_area;
        total_area =
          (n *. comp_perf.Perf.total_area)
          +. Proc.resistor_area process spec.r_ladder;
        dc_power = (n *. comp_perf.Perf.dc_power) +. ladder_power;
        bandwidth = Some (1. /. comparator.Comparator.delay_est);
      }
    in
    {
      spec;
      comparator;
      r_unit;
      levels;
      delay_est = comparator.Comparator.delay_est;
      perf;
    }

  let fragment (process : Proc.t) design =
    let b = B.create ~title:"flash_adc" in
    let n_levels = List.length design.levels in
    let vdd = process.Proc.vdd in
    let lsb =
      (design.spec.vref_hi -. design.spec.vref_lo)
      /. float_of_int (1 lsl design.spec.bits)
    in
    (* Reference ladder from VDD to ground with end resistors sized so
       the taps land on vref_lo + k*lsb. *)
    let tap k = Printf.sprintf "lt%d" k in
    let r_of_span v = design.spec.r_ladder *. v /. vdd in
    B.resistor b ~a:"vdd" ~b:(tap n_levels)
      (r_of_span (vdd -. design.spec.vref_hi +. lsb));
    for k = n_levels downto 2 do
      B.resistor b ~a:(tap k) ~b:(tap (k - 1)) design.r_unit
    done;
    B.resistor b ~a:(tap 1) ~b:"0" (r_of_span (design.spec.vref_lo +. lsb));
    let comp_frag =
      Comparator.fragment process design.comparator
    in
    let ports = ref [] in
    for k = 1 to n_levels do
      let out = Printf.sprintf "d%d" k in
      B.instance b
        ~prefix:(Printf.sprintf "c%d" k)
        ~port_map:
          [
            ("inp", "in"); ("inn", tap k); ("out", out); ("vdd", "vdd");
          ]
        comp_frag.Fragment.netlist;
      ports := (Printf.sprintf "t%d" k, out) :: !ports
    done;
    let mid = Printf.sprintf "d%d" (1 lsl (design.spec.bits - 1)) in
    Fragment.make (B.finish_unvalidated b)
      ([ ("vdd", "vdd"); ("in", "in"); ("out", mid) ] @ List.rev !ports)
end

module Dac = struct
  type spec = { bits : int; settling : float; r_unit : float }

  let spec ?(r_unit = 10e3) ~bits ~settling () = { bits; settling; r_unit }

  type design = {
    spec : spec;
    buffer : Opamp.design;
    settling_est : float;
    perf : Perf.t;
  }

  let design (process : Proc.t) spec =
    if spec.bits < 1 || spec.bits > 12 then
      invalid_arg "Dac.design: bits out of [1, 12]";
    (* Accuracy: loop gain ≥ 4·2ⁿ keeps the buffer error below LSB/4;
       speed: settle in ~4.6 closed-loop time constants. *)
    let av_req = 4. *. float_of_int (1 lsl spec.bits) in
    let ugf_req = 4.6 /. (2. *. Float.pi *. 0.5 *. spec.settling) in
    let buffer =
      Opamp.design process
        (Opamp.spec ~av:av_req ~ugf:ugf_req ~ibias:1e-6 ~cl:5e-12 ())
    in
    (* Ladder Thevenin resistance is R at every node; settling adds the
       ladder RC into the buffer input capacitance (small). *)
    let t_amp = 4.6 /. (2. *. Float.pi *. buffer.Opamp.ugf) in
    let t_ladder = spec.r_unit *. 1e-12 in
    let settling_est = t_amp +. t_ladder in
    let n_r = (2 * spec.bits) + 1 in
    let ladder_area =
      float_of_int n_r *. Proc.resistor_area process spec.r_unit
    in
    let perf =
      {
        buffer.Opamp.perf with
        Perf.total_area = buffer.Opamp.perf.Perf.total_area +. ladder_area;
        bandwidth = Some (1. /. settling_est);
      }
    in
    { spec; buffer; settling_est; perf }

  let fragment (process : Proc.t) design =
    let b = B.create ~title:"r2r_dac" in
    let bits = design.spec.bits in
    let r = design.spec.r_unit in
    (* R-2R: node n0 (LSB end, terminated) ... n(bits-1) feeds the
       buffer. *)
    let node k = Printf.sprintf "n%d" k in
    B.resistor b ~a:(node 0) ~b:"0" (2. *. r);
    for k = 0 to bits - 1 do
      B.resistor b ~a:(Printf.sprintf "b%d" k) ~b:(node k) (2. *. r);
      if k < bits - 1 then B.resistor b ~a:(node k) ~b:(node (k + 1)) r
    done;
    let buf_frag = Opamp.fragment process design.buffer in
    (* Unity feedback: the inverting input is wired to the output. *)
    B.instance b ~prefix:"buf"
      ~port_map:
        [
          ("inp", node (bits - 1));
          ("inn", "out");
          ("out", "out");
          ("vdd", "vdd");
        ]
      buf_frag.Fragment.netlist;
    let bit_ports =
      List.init bits (fun k ->
          let name = Printf.sprintf "b%d" k in
          (name, name))
    in
    Fragment.make (B.finish_unvalidated b)
      ([ ("vdd", "vdd"); ("out", "out") ] @ bit_ports)
end
