module Proc = Ape_process.Process
module B = Ape_circuit.Builder

type lp_spec = { order : int; f_cutoff : float; r_base : float }

type bp_spec = {
  f_center : float;
  q : float;
  gain : float;
  c_base : float;
}

type stage = {
  k : float;
  q : float;
  r : float;
  c : float;
  opamp : Opamp.design;
  ra : float;
  rb : float;
}

type lp_design = {
  lp_spec : lp_spec;
  stages : stage list;
  r_div : float;
  gain_est : float;
  f3db_est : float;
  f20db_est : float;
  perf : Perf.t;
}

type bp_design = {
  bp_spec : bp_spec;
  opamp : Opamp.design;
  r_div : float;
  r1 : float;
  r2 : float;
  r3 : float;
  gain_est : float;
  f0_est : float;
  bw_est : float;
  perf : Perf.t;
}

let butterworth_q order =
  if order < 2 || order mod 2 <> 0 then
    invalid_arg "Filter.butterworth_q: order must be even and >= 2";
  Ape_util.Poly.butterworth_poles order
  |> List.filter_map (fun (p : Complex.t) ->
         if p.im > 1e-9 then Some (1. /. (2. *. Float.abs p.re)) else None)
  |> List.sort compare

(* The stage amplifier: a gain-K non-inverting opamp, buffered so its
   output drives the biquad's resistive network; UGF well above the
   corner scaled by K and Q so the biquad's Q is not eroded. *)
let stage_opamp process ~fc ~k ~q ~r_load =
  Opamp.design process
    (Opamp.spec ~buffer:true ~zout:(r_load /. 50.)
       ~av:(Float.max 60. (60. *. k))
       ~ugf:(100. *. fc *. k *. Float.max 1. q)
       ~ibias:1e-6 ~cl:5e-12 ())

let sum_opamp_perf field designs =
  List.fold_left (fun acc d -> acc +. field d.Opamp.perf) 0. designs

let design_lp (process : Proc.t) lp_spec =
  if lp_spec.f_cutoff <= 0. then invalid_arg "Filter.design_lp: f <= 0";
  let qs = butterworth_q lp_spec.order in
  let wc = 2. *. Float.pi *. lp_spec.f_cutoff in
  let r = lp_spec.r_base in
  let c = 1. /. (wc *. r) in
  let ra = lp_spec.r_base /. 10. in
  let stages =
    List.map
      (fun q ->
        let k = 3. -. (1. /. q) in
        let r_load = Float.min lp_spec.r_base ra in
        let opamp = stage_opamp process ~fc:lp_spec.f_cutoff ~k ~q ~r_load in
        let rb = (k -. 1.) *. ra in
        { k; q; r; c; opamp; ra; rb })
      qs
  in
  let r_div = lp_spec.r_base /. 20. in
  let gain_est =
    List.fold_left (fun acc (s : stage) -> acc *. s.k) 1. stages
  in
  let f3db_est = lp_spec.f_cutoff in
  let f20db_est =
    lp_spec.f_cutoff *. (99. ** (1. /. float_of_int (2 * lp_spec.order)))
  in
  let opamps = List.map (fun (s : stage) -> s.opamp) stages in
  let passive_area =
    List.fold_left
      (fun acc (s : stage) ->
        acc
        +. (2. *. Proc.resistor_area process s.r)
        +. (2. *. Proc.capacitor_area process s.c)
        +. Proc.resistor_area process s.ra
        +. Proc.resistor_area process (Float.max 1. s.rb))
      0. stages
  in
  let gate_area = sum_opamp_perf (fun p -> p.Perf.gate_area) opamps in
  let divider_power =
    let vdd = process.Proc.vdd in
    vdd *. vdd /. (2. *. r_div)
  in
  let perf =
    {
      Perf.empty with
      Perf.gate_area;
      total_area =
        sum_opamp_perf (fun p -> p.Perf.total_area) opamps
        +. (2. *. Proc.resistor_area process r_div)
        +. passive_area;
      dc_power =
        sum_opamp_perf (fun p -> p.Perf.dc_power) opamps +. divider_power;
      gain = Some gain_est;
      bandwidth = Some f3db_est;
    }
  in
  { lp_spec; stages; r_div; gain_est; f3db_est; f20db_est; perf }

let fragment_lp (process : Proc.t) (design : lp_design) =
  let b = B.create ~title:"sk_lpf" in
  B.resistor b ~a:"vdd" ~b:"vref" design.r_div;
  B.resistor b ~a:"vref" ~b:"0" design.r_div;
  let n_stages = List.length design.stages in
  List.iteri
    (fun i (stage : stage) ->
      let prefix = Printf.sprintf "s%d" (i + 1) in
      let inn = if i = 0 then "in" else Printf.sprintf "mid%d" i in
      let outn =
        if i = n_stages - 1 then "out" else Printf.sprintf "mid%d" (i + 1)
      in
      let na = prefix ^ "_a" and nb = prefix ^ "_b" in
      let nfb = prefix ^ "_fb" in
      B.resistor b ~a:inn ~b:na stage.r;
      B.resistor b ~a:na ~b:nb stage.r;
      B.capacitor b ~a:na ~b:outn stage.c;
      B.capacitor b ~a:nb ~b:"vref" stage.c;
      let opamp_frag = Opamp.fragment process stage.opamp in
      B.instance b ~prefix
        ~port_map:
          [ ("inp", nb); ("inn", nfb); ("out", outn); ("vdd", "vdd") ]
        opamp_frag.Fragment.netlist;
      B.resistor b ~a:"vref" ~b:nfb stage.ra;
      if stage.rb > 1. then B.resistor b ~a:nfb ~b:outn stage.rb
      else B.resistor b ~a:nfb ~b:outn 1.)
    design.stages;
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("in", "in"); ("out", "out"); ("vref", "vref") ]

let design_bp (process : Proc.t) bp_spec =
  if bp_spec.f_center <= 0. || bp_spec.q <= 0. then
    invalid_arg "Filter.design_bp: bad spec";
  if bp_spec.gain >= 2. *. bp_spec.q *. bp_spec.q then
    invalid_arg "Filter.design_bp: gain >= 2q^2 not realisable (MFB)";
  let w0 = 2. *. Float.pi *. bp_spec.f_center in
  let c = bp_spec.c_base in
  let q = bp_spec.q and a0 = bp_spec.gain in
  (* MFB equal-C design equations. *)
  let r1 = q /. (w0 *. c *. a0) in
  let r3 = 2. *. q /. (w0 *. c) in
  let r2 = q /. (w0 *. c *. ((2. *. q *. q) -. a0)) in
  let opamp =
    Opamp.design process
      (Opamp.spec ~buffer:true ~zout:(Float.min r1 r3 /. 50.)
         ~av:(Float.max 100. (40. *. q *. q))
         ~ugf:(100. *. bp_spec.f_center *. q)
         ~ibias:1e-6 ~cl:5e-12 ())
  in
  let r_div = Float.min r1 r2 /. 10. in
  let passive_area =
    Proc.resistor_area process r1
    +. Proc.resistor_area process r2
    +. Proc.resistor_area process r3
    +. (2. *. Proc.capacitor_area process c)
  in
  let divider_power =
    let vdd = process.Proc.vdd in
    vdd *. vdd /. (2. *. r_div)
  in
  let perf =
    {
      Perf.empty with
      Perf.gate_area = opamp.Opamp.perf.Perf.gate_area;
      total_area =
        opamp.Opamp.perf.Perf.total_area
        +. (2. *. Proc.resistor_area process r_div)
        +. passive_area;
      dc_power = opamp.Opamp.perf.Perf.dc_power +. divider_power;
      gain = Some a0;
      bandwidth = Some (bp_spec.f_center /. q);
    }
  in
  {
    bp_spec;
    opamp;
    r_div;
    r1;
    r2;
    r3;
    gain_est = a0;
    f0_est = bp_spec.f_center;
    bw_est = bp_spec.f_center /. q;
    perf;
  }

let fragment_bp (process : Proc.t) (design : bp_design) =
  let b = B.create ~title:"mfb_bpf" in
  B.resistor b ~a:"vdd" ~b:"vref" design.r_div;
  B.resistor b ~a:"vref" ~b:"0" design.r_div;
  let c = design.bp_spec.c_base in
  B.resistor b ~a:"in" ~b:"na" design.r1;
  B.resistor b ~a:"na" ~b:"vref" design.r2;
  B.capacitor b ~a:"na" ~b:"nb" c;
  B.capacitor b ~a:"na" ~b:"out" c;
  B.resistor b ~a:"nb" ~b:"out" design.r3;
  let opamp_frag = Opamp.fragment process design.opamp in
  B.instance b ~prefix:"op1"
    ~port_map:
      [ ("inp", "vref"); ("inn", "nb"); ("out", "out"); ("vdd", "vdd") ]
    opamp_frag.Fragment.netlist;
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("in", "in"); ("out", "out"); ("vref", "vref") ]
