module Proc = Ape_process.Process
module B = Ape_circuit.Builder

type spec = { gain : float; bandwidth : float }

type design = {
  spec : spec;
  opamp : Opamp.design;
  r_trim : float;
  gain_est : float;
  bandwidth_est : float;
  perf : Perf.t;
}

let design (process : Proc.t) spec =
  if spec.gain <= 1. || spec.bandwidth <= 0. then
    invalid_arg "Audio_amp.design: bad spec";
  (* Realisation coefficient: a trimmed two-stage stage realises about
     half of the ideal-Miller gm1/(2*pi*Cc) unity-gain frequency (second
     pole, RHP-zero residue and the trim loading all bite near crossover),
     so the core is designed at 2.8x and the estimate reports 0.5x of the
     core's ideal UGF. *)
  let realization = 0.5 in
  let ugf = spec.gain *. spec.bandwidth /. realization *. 1.4 in
  let opamp =
    Opamp.design process
      (Opamp.spec ~force_stage2:true ~av:spec.gain ~ugf ~ibias:1e-6
         ~cl:10e-12 ())
  in
  let a_raw = opamp.Opamp.gain in
  let ro =
    match opamp.Opamp.stage2 with
    | Some s ->
      1. /. (s.Opamp.driver.Ape_device.Mos.gds +. s.Opamp.sink.Ape_device.Mos.gds)
    | None -> opamp.Opamp.zout
  in
  (* A_loaded = A_raw · (R ∥ ro)/ro = spec.gain  ⇒  R = ro·k/(1−k). *)
  let k = spec.gain /. a_raw in
  if k >= 1. then invalid_arg "Audio_amp.design: raw gain below target";
  let r_trim = ro *. k /. (1. -. k) in
  let gain_est = spec.gain in
  let bandwidth_est = realization *. opamp.Opamp.ugf /. gain_est in
  let vdd = process.Proc.vdd in
  let divider_power = vdd *. vdd /. (4. *. r_trim) in
  let perf =
    {
      opamp.Opamp.perf with
      Perf.gain = Some gain_est;
      bandwidth = Some bandwidth_est;
      total_area =
        opamp.Opamp.perf.Perf.total_area
        +. (2. *. Proc.resistor_area process (2. *. r_trim));
      dc_power = opamp.Opamp.perf.Perf.dc_power +. divider_power;
      zout = Some (Float.min r_trim ro);
    }
  in
  { spec; opamp; r_trim; gain_est; bandwidth_est; perf }

let fragment (process : Proc.t) design =
  let b = B.create ~title:"audio_amp" in
  let opamp_frag = Opamp.fragment process design.opamp in
  B.instance b ~prefix:"core"
    ~port_map:
      [ ("inp", "inp"); ("inn", "inn"); ("out", "out"); ("vdd", "vdd") ]
    opamp_frag.Fragment.netlist;
  B.resistor b ~a:"vdd" ~b:"out" (2. *. design.r_trim);
  B.resistor b ~a:"out" ~b:"0" (2. *. design.r_trim);
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("inp", "inp"); ("inn", "inn"); ("out", "out") ]
