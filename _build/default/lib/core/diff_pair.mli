(** Level-2 differential amplifiers — the paper's DiffNMOS and DiffCMOS
    rows of Table 2 and the input stage of every level-3 opamp.

    - {b DiffNMOS}: NMOS source-coupled pair with diode-connected NMOS
      loads, single-ended output; |A_dm| = gm_i / (2·(gm_l + gmb_l)).
    - {b DiffCMOS}: NMOS pair with PMOS current-mirror load, single-ended
      output; the paper's equations (5)–(7):
      A_dm ≈ gm_i/(gd_l + gd_i),
      A_cm ≈ −g_0·gd_i / (2·gm_l·(gd_l + gd_i)),
      CMRR ≈ 2·gm_i·gm_l / (g_0·gd_i).

    Both sit on an NMOS tail mirror built from the {!Bias} library —
    the hierarchy the paper's Figure 2 draws. *)

type load = Nmos_diode | Cmos_mirror

val load_name : load -> string
(** "DiffNMOS" / "DiffCMOS". *)

type spec = {
  load : load;
  av : float;  (** required differential gain magnitude *)
  itail : float;  (** tail current, A *)
  iref : float;  (** bias-reference branch current, A (tail mirror ratio
                     is itail/iref) *)
  cl : float;  (** load capacitance for UGF estimate, F *)
  tail_topology : Bias.mirror_topology;
      (** current-source topology under the pair (paper: "type of current
          source" is a free topology choice) *)
}

val spec :
  ?av:float ->
  ?cl:float ->
  ?tail_topology:Bias.mirror_topology ->
  ?iref:float ->
  load ->
  itail:float ->
  spec
(** [iref] defaults to [itail]. *)

type design = {
  spec : spec;
  pair : Ape_device.Mos.sized;  (** one of the two matched input devices *)
  load_dev : Ape_device.Mos.sized;  (** one of the two matched loads *)
  tail : Bias.Current_mirror.design;
  input_cm : float;  (** intended input common-mode voltage, V *)
  output_dc : float;  (** expected output DC, V *)
  gain : float;  (** signed A_dm estimate *)
  acm : float;  (** common-mode gain magnitude estimate *)
  cmrr : float;
  ugf : float;
  slew_rate : float;
  gm : float;  (** differential transconductance gm_i *)
  rout : float;  (** single-ended output resistance *)
  perf : Perf.t;
}

val design : ?l:float -> Ape_process.Process.t -> spec -> design

val design_for_gm :
  ?l:float -> gm:float -> Ape_process.Process.t -> spec -> design
(** Like {!design} but the input-pair transconductance is prescribed
    directly (the opamp level derives it from the UGF spec) and the
    channel length is chosen to meet the spec's [av] at that gm; the
    spec's [av] field is treated as a lower bound rather than a target. *)

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [inp], [inn], [out].  The tail current source is
    spliced in as a child instance of the {!Bias.Current_mirror}
    fragment; its mirror reference node is exported as port [bias] so
    enclosing levels (opamp stage-2/buffer sinks) can ratio off it. *)
