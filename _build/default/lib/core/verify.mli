(** Simulation-based verification of estimator designs — the "sim"
    columns of the paper's Tables 2, 3 and 5.

    Each [sim_*] function elaborates the design's netlist fragment,
    wraps it in the appropriate testbench (supply, input drive, load),
    solves it with {!Ape_spice} and returns a {!Perf.t} of {e measured}
    values, directly comparable with the design's estimated [perf].

    High-gain stages whose output level is sensitive to the input DC are
    biased by a servo loop (Brent iteration on the input source), the
    programmatic equivalent of SPICE [.NODESET] fiddling. *)

exception Verification_failed of string

val set_source_dc :
  name:string -> dc:float -> Ape_circuit.Netlist.t -> Ape_circuit.Netlist.t
(** Functional update of one named V/I source's DC value; raises
    [Not_found] if absent. *)

val set_source_ac :
  name:string -> ac:float -> Ape_circuit.Netlist.t -> Ape_circuit.Netlist.t

val servo_dc :
  source:string ->
  out:Ape_circuit.Netlist.node ->
  target:float ->
  lo:float ->
  hi:float ->
  Ape_circuit.Netlist.t ->
  Ape_circuit.Netlist.t * Ape_spice.Dc.op
(** Adjust the named source's DC until [V(out)] lands on [target]
    (1 mV tolerance); returns the adjusted netlist and its operating
    point.  Raises {!Verification_failed} when no bias in [[lo, hi]]
    reaches the target. *)

(** {1 Level-2 component verification} *)

val sim_dc_volt :
  Ape_process.Process.t -> Bias.Dc_volt.design -> Perf.t

val sim_mirror :
  Ape_process.Process.t -> Bias.Current_mirror.design -> Perf.t

val sim_gain_stage :
  Ape_process.Process.t -> Gain_stage.design -> Perf.t

val sim_diff_pair :
  Ape_process.Process.t -> Diff_pair.design -> Perf.t
(** Includes the measured input-referred noise density at 1 kHz (MNA
    noise analysis) in the [noise] field. *)

val monte_carlo_offset :
  ?runs:int ->
  ?seed:int ->
  Ape_process.Process.t ->
  Diff_pair.design ->
  float
(** Monte-Carlo mismatch: every MOSFET's threshold is perturbed by a
    Pelgrom-distributed sample (σ = A_VT/√(WL)) and the input-referred
    offset of each sample circuit is measured by a servo; returns the
    sample standard deviation (V).  Default 25 runs. *)

(** {1 Level-3 opamp verification} *)

val sim_opamp :
  ?slew:bool -> Ape_process.Process.t -> Opamp.design -> Perf.t
(** Open-loop AC testbench (differential drive, servoed offset) for
    gain/UGF/CMRR/Z_out/power/area, plus — when [slew] is true
    (default) — a unity-feedback transient step for the slew rate. *)

(** {1 Level-4 module verification} *)

type module_sim = {
  perf : Perf.t;
  response_time : float option;
      (** S&H acquisition / comparator & ADC delay / DAC settling, s *)
  f0 : float option;  (** band-pass centre frequency, Hz *)
  f_20db : float option;  (** low-pass −20 dB frequency, Hz *)
  dc_code_error : float option;
      (** ADC: worst trip-point error in LSB; DAC: output error in LSB *)
}

val sim_module :
  Ape_process.Process.t -> Module_lib.design -> module_sim
(** Dispatches to the appropriate testbench:
    - audio amp → open-loop AC (gain, −3 dB bandwidth, power, area);
    - closed-loop amps / integrator → AC around the DC feedback point;
    - filters → AC sweep (gain, −3 dB/−20 dB edges or f₀/BW);
    - S&H → track-mode AC + step transient (acquisition to 1 %);
    - comparator → step-overdrive transient (delay);
    - flash ADC → DC power/area + mid-code trip-point check + the
      comparator's transient delay;
    - DAC → mid-code static accuracy + MSB-step settling transient. *)
