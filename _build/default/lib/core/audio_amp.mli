(** Level-4 audio amplifier (paper Table 5 "amp"): a two-stage opamp
    used {e open loop} with a prescribed gain and bandwidth.

    Raw two-stage gain far exceeds a target like 100, so the output is
    loaded by a gain-trim divider (2R_trim to each rail ≡ R_trim to
    mid-rail): DC gain drops to the spec while the unity-gain frequency
    gm1/(2πCc) is untouched, so the −3 dB bandwidth lands at
    UGF/gain — exactly the paper's gain-100 / 20 kHz operating point. *)

type spec = {
  gain : float;  (** open-loop gain target *)
  bandwidth : float;  (** open-loop −3 dB bandwidth, Hz *)
}

type design = {
  spec : spec;
  opamp : Opamp.design;  (** two-stage core *)
  r_trim : float;
      (** Thevenin gain-trim resistance (realised as 2·R_trim to VDD and
          2·R_trim to ground), Ω *)
  gain_est : float;
  bandwidth_est : float;
  perf : Perf.t;
}

val design : Ape_process.Process.t -> spec -> design

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [inp], [inn], [out]. *)
