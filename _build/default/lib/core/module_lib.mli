(** Level-4 analog module library — the uniform entry point over all the
    module designers, mirroring the paper's "library of analog modules"
    (§4.4): amplifiers, integrators, comparators, ADCs, DACs, filters,
    sample-and-holds, adders.

    Each constructor pairs a user spec with the specialised designer;
    {!design} dispatches, and {!fragment}/{!perf}/{!name} give the bench
    and examples one calling convention for every module. *)

type spec =
  | Audio_amp of { gain : float; bandwidth : float }
      (** open-loop two-stage opamp (paper Table 5 "amp") *)
  | Sample_hold_m of Sample_hold.spec
  | Flash_adc_m of Data_conv.Flash_adc.spec
  | Dac_m of Data_conv.Dac.spec
  | Lowpass_m of Filter.lp_spec
  | Bandpass_m of Filter.bp_spec
  | Closed_loop_m of Closed_loop.spec
  | Comparator_m of Data_conv.Comparator.spec

type design =
  | D_audio of Audio_amp.design
  | D_sh of Sample_hold.design
  | D_adc of Data_conv.Flash_adc.design
  | D_dac of Data_conv.Dac.design
  | D_lpf of Filter.lp_design
  | D_bpf of Filter.bp_design
  | D_closed of Closed_loop.design
  | D_comp of Data_conv.Comparator.design

val design : Ape_process.Process.t -> spec -> design
val fragment : Ape_process.Process.t -> design -> Fragment.t
val perf : design -> Perf.t
val name : design -> string

val device_count : Ape_process.Process.t -> design -> int
(** MOSFET count of the elaborated netlist. *)
