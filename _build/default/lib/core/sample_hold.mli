(** Level-4 sample-and-hold (paper Figure 3b, Table 5 s&h row): a
    voltage-controlled sampling switch, a hold capacitor, and a
    non-inverting gain amplifier built from the level-3 opamp. *)

type spec = {
  gain : float;  (** hold-path gain (≥ 1; the paper's example is 2) *)
  bandwidth : float;  (** amplifier −3 dB bandwidth, Hz *)
  sr : float;  (** required slew rate, V/s *)
  c_hold : float;  (** hold capacitance, F *)
  r_on : float;  (** sampling-switch on-resistance, Ω *)
}

val spec :
  ?c_hold:float -> ?r_on:float -> gain:float -> bandwidth:float -> sr:float ->
  unit -> spec
(** Defaults: 10 pF hold cap, 1 kΩ switch. *)

type design = {
  spec : spec;
  amp : Closed_loop.design;  (** non-inverting gain stage *)
  response_time_est : float;
      (** acquisition to 1 %: switch-RC settling + amplifier settling +
          slew, s *)
  perf : Perf.t;
}

val design : Ape_process.Process.t -> spec -> design

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [in], [ctrl] (switch gate, high = track), [out]. *)
