(** Level-2 single-ended gain stages and the output buffer — the paper's
    GainNMOS, GainCMOS, GainCMOSH and Follower rows of Table 2.

    Topology conventions (documented in DESIGN.md since the paper names
    but does not draw them):
    - {b GainNMOS}: common-source NMOS driver, diode-connected NMOS load
      (gain −gm1/(gm2+gmb2+gds), self-biased output).
    - {b GainCMOS}: common-source NMOS driver, PMOS current-source load
      from an internal R-biased PMOS mirror (gain −gm1/(gds1+gds2)).
    - {b GainCMOSH}: common-source NMOS driver, diode-connected PMOS
      load — the "half-swing" low-power variant (gain −gm1/gm2p, no body
      effect, well-defined output level).
    - {b Follower}: NMOS source follower over an R-biased NMOS mirror
      sink. *)

type kind = Gain_nmos | Gain_cmos | Gain_cmosh | Follower_stage

val kind_name : kind -> string

type spec = {
  kind : kind;
  av : float;  (** required gain magnitude (ignored for Follower) *)
  i : float;  (** stage bias current, A *)
  cl : float;  (** load capacitance assumed for UGF/BW estimates, F *)
}

val spec : ?av:float -> ?cl:float -> kind -> i:float -> spec
(** [av] defaults to 10 (unused by Follower), [cl] to 1 pF. *)

type design = {
  spec : spec;
  devices : (string * Ape_device.Mos.sized) list;
      (** role → sized device; roles: [driver], [load], [bias_diode],
          [sink]… *)
  r_bias : float option;  (** internal bias resistor when present *)
  input_dc : float;  (** DC input voltage to bias the stage, V *)
  output_dc : float;  (** expected DC output, V *)
  needs_servo : bool;
      (** true when the output level is gain-sensitive to the input DC
          (verification should servo the input; see {!Verify}) *)
  gain : float;  (** estimated gain, signed *)
  ugf : float option;
  bandwidth : float;
  zout : float;
  perf : Perf.t;
}

val design : ?l:float -> Ape_process.Process.t -> spec -> design
(** Raises [Invalid_argument] when the gain spec is infeasible at every
    candidate channel length. *)

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [in], [out]. *)
