(** Level-4 closed-loop amplifier modules: inverting / non-inverting
    amplifiers, the integrator and the summing adder — opamp + R/C
    networks, with the ideal behaviour corrected by the non-ideal opamp
    attributes exactly as the paper's §4.4 describes.

    All modules run single-supply around a mid-rail reference generated
    by a level-2 {!Bias.Dc_volt} — the elaborated netlist is therefore a
    three-level composition (transistors → bias/diff components → opamp →
    module), mirroring the paper's Figure 2. *)

type kind =
  | Inverting of { gain : float  (** magnitude of −R2/R1 *) }
  | Non_inverting of { gain : float  (** 1 + R2/R1, > 1 *) }
  | Integrator of { f_unity : float  (** 1/(2πRC), Hz *) }
  | Adder of { gains : float list  (** per-input inverting gains *) }

type spec = {
  kind : kind;
  bandwidth : float;  (** required closed-loop −3 dB bandwidth, Hz *)
  cl : float;  (** output load capacitance, F *)
  r_base : float;  (** input resistor value, Ω (default 10 kΩ) *)
  sr : float option;  (** slew-rate requirement forwarded to the opamp *)
}

val spec :
  ?cl:float -> ?r_base:float -> ?sr:float -> bandwidth:float -> kind -> spec
(** [r_base] defaults to 400 kΩ — large relative to both the reference
    divider's Thevenin impedance and the buffered opamp's Z_out. *)

type design = {
  spec : spec;
  opamp : Opamp.design;
  r_div : float;  (** each half of the mid-rail reference divider, Ω *)
  resistors : (string * float) list;  (** role → Ω *)
  capacitors : (string * float) list;  (** role → F *)
  gain_ideal : float;
  gain_est : float;  (** finite-gain-corrected closed-loop gain *)
  bandwidth_est : float;  (** UGF / noise gain *)
  perf : Perf.t;
}

val design : Ape_process.Process.t -> spec -> design
(** Sizes the embedded opamp (buffered, Z_out ≤ r_base/50) so loop gain
    ≥ ~20 at DC and the closed-loop bandwidth meets spec with 30 %
    margin.  Raises {!Opamp.Infeasible} when that opamp cannot be
    built. *)

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [in] (or [in1], [in2], … for the adder), [out]. *)
