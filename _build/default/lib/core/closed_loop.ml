module Proc = Ape_process.Process
module B = Ape_circuit.Builder

type kind =
  | Inverting of { gain : float }
  | Non_inverting of { gain : float }
  | Integrator of { f_unity : float }
  | Adder of { gains : float list }

type spec = {
  kind : kind;
  bandwidth : float;
  cl : float;
  r_base : float;
  sr : float option;
}

let spec ?(cl = 10e-12) ?(r_base = 400e3) ?sr ~bandwidth kind =
  { kind; bandwidth; cl; r_base; sr }

type design = {
  spec : spec;
  opamp : Opamp.design;
  r_div : float;
  resistors : (string * float) list;
  capacitors : (string * float) list;
  gain_ideal : float;
  gain_est : float;
  bandwidth_est : float;
  perf : Perf.t;
}

(* Noise gain (1/β) of each configuration: it sets both the bandwidth
   shrink and the loop-gain requirement. *)
let noise_gain = function
  | Inverting { gain } -> 1. +. gain
  | Non_inverting { gain } -> gain
  | Integrator _ -> 2. (* at the unity-gain frequency *)
  | Adder { gains } -> 1. +. List.fold_left ( +. ) 0. gains

let ideal_gain = function
  | Inverting { gain } -> -.gain
  | Non_inverting { gain } -> gain
  | Integrator _ -> -1. (* at f_unity *)
  | Adder { gains } -> -.(List.fold_left Float.max 0. gains)

let design (process : Proc.t) spec =
  let ng = noise_gain spec.kind in
  if ng < 1. then invalid_arg "Closed_loop.design: noise gain < 1";
  (* Loop gain >= 20 at DC for <= 5 % gain error; UGF covers the
     bandwidth at the noise gain with margin. *)
  let av_req = 20. *. ng in
  let ugf_req = 1.3 *. ng *. spec.bandwidth in
  (* Resistive feedback demands a low-impedance output: a buffered
     opamp with Z_out well under the feedback resistance. *)
  let opamp =
    Opamp.design process
      (Opamp.spec ?sr:spec.sr ~buffer:true ~zout:(spec.r_base /. 50.)
         ~av:av_req ~ugf:ugf_req ~ibias:1e-6 ~cl:spec.cl ())
  in
  (* Mid-rail reference: a stiff resistive divider (Thevenin r_div/2,
     kept far below r_base). *)
  let r_div = spec.r_base /. 10. in
  let r1 = spec.r_base in
  let resistors, capacitors =
    match spec.kind with
    | Inverting { gain } -> ([ ("r1", r1); ("r2", gain *. r1) ], [])
    | Non_inverting { gain } ->
      ([ ("r1", r1); ("r2", (gain -. 1.) *. r1) ], [])
    | Integrator { f_unity } ->
      let c = 1. /. (2. *. Float.pi *. f_unity *. r1) in
      ([ ("r1", r1) ], [ ("cf", c) ])
    | Adder { gains } ->
      let rf = 2. *. r1 in
      ( ("rf", rf)
        :: List.mapi
             (fun i g -> (Printf.sprintf "r%d" (i + 1), rf /. g))
             gains,
        [] )
  in
  let a = Float.abs opamp.Opamp.gain in
  let gain_ideal = ideal_gain spec.kind in
  (* Finite-gain correction: A_cl = A_ideal / (1 + NG/A). *)
  let gain_est = gain_ideal /. (1. +. (ng /. a)) in
  (* For the integrator, the characteristic frequency is its unity
     crossing 1/(2πRC); for the amplifiers it is UGF / noise gain. *)
  let bandwidth_est =
    match spec.kind with
    | Integrator { f_unity } -> f_unity
    | Inverting _ | Non_inverting _ | Adder _ -> opamp.Opamp.ugf /. ng
  in
  let passive_area =
    List.fold_left
      (fun acc (_, r) -> acc +. Proc.resistor_area process r)
      0. resistors
    +. List.fold_left
         (fun acc (_, c) -> acc +. Proc.capacitor_area process c)
         0. capacitors
  in
  let divider_power =
    let vdd = process.Proc.vdd in
    vdd *. vdd /. (2. *. r_div)
  in
  let gate_area = opamp.Opamp.perf.Perf.gate_area in
  let perf =
    {
      Perf.empty with
      Perf.gate_area;
      total_area =
        opamp.Opamp.perf.Perf.total_area
        +. (2. *. Proc.resistor_area process r_div)
        +. passive_area;
      dc_power = opamp.Opamp.perf.Perf.dc_power +. divider_power;
      gain = Some gain_est;
      bandwidth = Some bandwidth_est;
      ugf = Some opamp.Opamp.ugf;
      slew_rate = opamp.Opamp.perf.Perf.slew_rate;
      zout = opamp.Opamp.perf.Perf.zout;
    }
  in
  {
    spec;
    opamp;
    r_div;
    resistors;
    capacitors;
    gain_ideal;
    gain_est;
    bandwidth_est;
    perf;
  }

let fragment (process : Proc.t) design =
  let b = B.create ~title:"closed_loop" in
  let opamp_frag = Opamp.fragment process design.opamp in
  B.resistor b ~a:"vdd" ~b:"vref" design.r_div;
  B.resistor b ~a:"vref" ~b:"0" design.r_div;
  let r role = List.assoc role design.resistors in
  let inp, inn =
    match design.spec.kind with
    | Inverting _ | Integrator _ | Adder _ -> ("vref", "vsum")
    | Non_inverting _ -> ("in", "vsum")
  in
  B.instance b ~prefix:"op1"
    ~port_map:
      [ ("inp", inp); ("inn", inn); ("out", "out"); ("vdd", "vdd") ]
    opamp_frag.Fragment.netlist;
  let ports =
    match design.spec.kind with
    | Inverting _ ->
      B.resistor b ~a:"in" ~b:"vsum" (r "r1");
      B.resistor b ~a:"vsum" ~b:"out" (r "r2");
      [ ("in", "in") ]
    | Non_inverting _ ->
      B.resistor b ~a:"vref" ~b:"vsum" (r "r1");
      B.resistor b ~a:"vsum" ~b:"out" (r "r2");
      [ ("in", "in") ]
    | Integrator _ ->
      B.resistor b ~a:"in" ~b:"vsum" (r "r1");
      let c = List.assoc "cf" design.capacitors in
      B.capacitor b ~a:"vsum" ~b:"out" c;
      (* Large DC-feedback resistor so the integrator has a defined
         operating point (standard practice). *)
      B.resistor b ~a:"vsum" ~b:"out" (200. *. design.spec.r_base);
      [ ("in", "in") ]
    | Adder { gains } ->
      B.resistor b ~a:"vsum" ~b:"out" (r "rf");
      List.mapi
        (fun i _ ->
          let port = Printf.sprintf "in%d" (i + 1) in
          B.resistor b ~a:port ~b:"vsum" (r (Printf.sprintf "r%d" (i + 1)));
          (port, port))
        gains
  in
  Fragment.make (B.finish_unvalidated b)
    ((("vdd", "vdd") :: ports) @ [ ("out", "out"); ("vref", "vref") ])
