(** Elaborated circuit fragments.

    Every estimator level can emit the concrete netlist it just sized
    (design choice D1 in DESIGN.md).  A fragment is that netlist plus a
    port dictionary; it contains bias branches but {e not} the supply
    source — the verification testbench (or the enclosing level) adds
    supplies, drives and loads. *)

type t = {
  netlist : Ape_circuit.Netlist.t;
  ports : (string * Ape_circuit.Netlist.node) list;
      (** role → node, e.g. [("vdd", "vdd"); ("out", "out")] *)
}

val make :
  Ape_circuit.Netlist.t -> (string * Ape_circuit.Netlist.node) list -> t

val port : t -> string -> Ape_circuit.Netlist.node
(** Raises [Not_found] with the port name in the message. *)

val has_port : t -> string -> bool

val with_supply : ?vdd:float -> t -> Ape_circuit.Netlist.t
(** The fragment's netlist plus a VDD source on its [vdd] port (named
    [VDD]); ready for DC analysis once a drive is attached. *)
