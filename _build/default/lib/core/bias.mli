(** Level-2 bias components: DC bias-voltage generators and current
    sources/sinks (simple, cascode and Wilson mirrors) — the paper's
    DCVolt, CurrMirr and Wilson rows of Table 2, plus the Cascode
    variant §4.2 mentions.

    Every [design] function solves the component's symbolic equations
    for the device sizes (bottom-up via {!Ape_device.Mos.size}) and
    returns both the closed-form performance estimate and enough
    structure to elaborate a netlist fragment for independent
    simulation. *)

type mirror_topology = Simple | Cascode | Wilson

val mirror_topology_name : mirror_topology -> string

(** {1 DC bias voltage (DCVolt)} *)

module Dc_volt : sig
  type spec = {
    vout : float;  (** required bias voltage, V *)
    i : float;  (** branch bias current, A *)
  }

  type design = {
    spec : spec;
    stack : Ape_device.Mos.sized list;
        (** diode-connected devices from the output down to ground *)
    r_bias : float;  (** pull-up resistor from VDD, Ω *)
    perf : Perf.t;
  }

  val design : ?l:float -> Ape_process.Process.t -> spec -> design
  (** Sizes a stack of 1 or 2 diode-connected NMOS devices whose summed
      V_GS equals [vout] at current [i], pulled up through a resistor.
      Raises [Invalid_argument] when [vout] is outside the feasible
      window. *)

  val fragment : Ape_process.Process.t -> design -> Fragment.t
  (** Ports: [vdd], [out]. *)
end

(** {1 Current mirrors (NMOS sinks)} *)

module Current_mirror : sig
  type spec = {
    iout : float;  (** mirrored output current, A *)
    iin : float;  (** reference-branch current, A (mirror ratio iout/iin) *)
    topology : mirror_topology;
    vov : float;  (** design overdrive, V (default interface uses 0.35) *)
  }

  val spec :
    ?vov:float ->
    ?topology:mirror_topology ->
    ?iin:float ->
    iout:float ->
    unit ->
    spec
  (** [iin] defaults to [iout] (unit ratio). *)

  type design = {
    spec : spec;
    devices : Ape_device.Mos.sized list;
    r_bias : float;  (** input-branch pull-up from VDD, Ω *)
    v_in : float;  (** DC voltage of the mirror input node, V *)
    rout : float;  (** small-signal output resistance, Ω *)
    v_compliance : float;  (** minimum output voltage for saturation, V *)
    perf : Perf.t;
  }

  val design : ?l:float -> Ape_process.Process.t -> spec -> design

  val fragment : Ape_process.Process.t -> design -> Fragment.t
  (** Ports: [vdd], [out] (the current-sinking drain). *)
end
