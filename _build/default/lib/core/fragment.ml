module N = Ape_circuit.Netlist

type t = { netlist : N.t; ports : (string * N.node) list }

let make netlist ports = { netlist; ports }

let port t name =
  match List.assoc_opt name t.ports with
  | Some node -> node
  | None -> raise Not_found

let has_port t name = List.mem_assoc name t.ports

let with_supply ?(vdd = 5.0) t =
  let vdd_node = port t "vdd" in
  N.append t.netlist
    [ N.Vsource { name = "VDD"; p = vdd_node; n = N.ground; dc = vdd; ac = 0. } ]
