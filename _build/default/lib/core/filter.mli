(** Level-4 active filters (paper Figure 3c/3d, Table 5 lpf/bpf rows).

    - {b Low-pass}: even-order Butterworth as a cascade of equal-R,
      equal-C Sallen–Key biquads; each stage's Q is realised by its
      amplifier gain K = 3 − 1/Q, so the pass-band gain is Π K_i.
    - {b Band-pass}: a multiple-feedback (MFB) biquad.  The paper calls
      its band-pass "Sallen-Key"; the MFB form is the standard
      equal-capacitor realisation with well-conditioned design equations
      and preserves the evaluated behaviour (f₀, Q, mid-band gain) —
      substitution documented in DESIGN.md. *)

type lp_spec = {
  order : int;  (** even, ≥ 2 *)
  f_cutoff : float;  (** Butterworth −3 dB frequency, Hz *)
  r_base : float;  (** stage resistor value, Ω *)
}

type bp_spec = {
  f_center : float;  (** Hz *)
  q : float;  (** f₀ / bandwidth *)
  gain : float;  (** mid-band gain magnitude (< 2·Q²) *)
  c_base : float;  (** stage capacitor value, F *)
}

type stage = {
  k : float;  (** stage amplifier gain *)
  q : float;
  r : float;
  c : float;
  opamp : Opamp.design;
  ra : float;  (** gain-set divider to the reference *)
  rb : float;  (** gain-set feedback resistor *)
}

type lp_design = {
  lp_spec : lp_spec;
  stages : stage list;
  r_div : float;  (** each half of the mid-rail reference divider, Ω *)
  gain_est : float;  (** pass-band gain Π K_i *)
  f3db_est : float;
  f20db_est : float;  (** −20 dB frequency, Butterworth shape *)
  perf : Perf.t;
}

type bp_design = {
  bp_spec : bp_spec;
  opamp : Opamp.design;
  r_div : float;
  r1 : float;
  r2 : float;
  r3 : float;
  gain_est : float;
  f0_est : float;
  bw_est : float;
  perf : Perf.t;
}

val butterworth_q : int -> float list
(** Stage Q values (one per conjugate pole pair) of the even-order
    Butterworth prototype, ascending. *)

val design_lp : Ape_process.Process.t -> lp_spec -> lp_design
(** Raises [Invalid_argument] for odd or non-positive order. *)

val fragment_lp : Ape_process.Process.t -> lp_design -> Fragment.t
(** Ports: [vdd], [in], [out]. *)

val design_bp : Ape_process.Process.t -> bp_spec -> bp_design
(** Raises [Invalid_argument] when [gain >= 2·q²] (MFB realisability). *)

val fragment_bp : Ape_process.Process.t -> bp_design -> Fragment.t
(** Ports: [vdd], [in], [out]. *)
