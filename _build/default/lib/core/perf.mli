(** Performance attribute records shared across the estimation hierarchy.

    Every APE level produces "a new object ... with the estimates and
    sizes attached as attributes" (paper §4).  {!t} is that attribute set:
    the union of the columns of the paper's Tables 2/3/5, with [None] for
    attributes a component does not define (the tables' blank cells). *)

type t = {
  gate_area : float;  (** Σ W·L of the MOS devices, m² *)
  total_area : float;  (** gate area + passive (R/C) layout area, m² *)
  dc_power : float;  (** static supply power, W *)
  gain : float option;  (** low-frequency gain, V/V (signed) *)
  ugf : float option;  (** unity-gain frequency, Hz *)
  bandwidth : float option;  (** −3 dB bandwidth, Hz *)
  cmrr : float option;  (** common-mode rejection, V/V (not dB) *)
  slew_rate : float option;  (** V/s *)
  zout : float option;  (** output impedance, Ω *)
  current : float option;  (** characteristic branch current, A *)
  offset : float option;  (** systematic input offset, V *)
  phase_margin : float option;  (** degrees *)
  noise : float option;
      (** input-referred noise density at 1 kHz, V/√Hz *)
  offset_sigma : float option;
      (** random (mismatch) input-offset standard deviation, V *)
}

val empty : t
(** All optionals [None], areas and power 0. *)

val cmrr_db : t -> float option
val attr_list : t -> (string * string) list
(** Human-readable non-empty attributes, engineering-formatted. *)

val pp : Format.formatter -> t -> unit
