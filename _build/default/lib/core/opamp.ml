module Proc = Ape_process.Process
module Mos = Ape_device.Mos
module Card = Ape_process.Model_card
module B = Ape_circuit.Builder
module N = Ape_circuit.Netlist

type spec = {
  av : float;
  ugf : float;
  ibias : float;
  cl : float;
  buffer : bool;
  zout : float option;
  sr : float option;
  bias_topology : Bias.mirror_topology;
  diff_load : Diff_pair.load;
  area_max : float option;
  force_stage2 : bool;
}

let spec ?(buffer = false) ?zout ?sr ?(bias_topology = Bias.Simple)
    ?(diff_load = Diff_pair.Cmos_mirror) ?(cl = 10e-12) ?area_max
    ?(force_stage2 = false) ~av ~ugf ~ibias () =
  {
    av;
    ugf;
    ibias;
    cl;
    buffer;
    zout;
    sr;
    bias_topology;
    diff_load;
    area_max;
    force_stage2;
  }

type second_stage = {
  driver : Mos.sized;
  sink : Mos.sized;
  i2 : float;
  gain2 : float;
  cc : float;
  rz : float;
}

type buffer_stage = {
  driver : Mos.sized;
  sink : Mos.sized;
  i_buf : float;
  gain_buf : float;
}

type design = {
  spec : spec;
  diff : Diff_pair.design;
  stage2 : second_stage option;
  buffer : buffer_stage option;
  c_internal : float option;
  input_cm : float;
  output_dc : float;
  gain : float;
  ugf : float;
  slew_rate : float;
  zout : float;
  phase_margin : float;
  perf : Perf.t;
}

exception Infeasible of string

let deg_atan x = Float.atan x *. 180. /. Float.pi

(* Device parasitics loading the diff stage's single-ended output node:
   one pair drain (cdb + cgd) and one mirror-load drain (cdb + cgd). *)
let diff_output_parasitic (diff : Diff_pair.design) =
  let pair = diff.Diff_pair.pair and load = diff.Diff_pair.load_dev in
  pair.Mos.ss.Mos.cdb +. pair.Mos.ss.Mos.cgd +. load.Mos.ss.Mos.cdb
  +. load.Mos.ss.Mos.cgd

(* Source-follower buffer sized for an output-resistance requirement (or
   a pole well above the UGF when no Z_out is given). *)
let design_buffer ?(sink_vov = 0.35) (process : Proc.t) ~(spec : spec)
    ~in_dc =
  let nmos = process.Proc.nmos in
  let vdd = process.Proc.vdd in
  (* The buffer must both meet the Z_out requirement and keep its own
     pole (gm/C_L) well above the UGF. *)
  let gm_pole = 4. *. 2. *. Float.pi *. spec.ugf *. spec.cl in
  let gm_req =
    match spec.zout with
    | Some z when z > 0. -> Float.max (1.2 /. z) gm_pole
    | Some _ | None -> gm_pole
  in
  let vov = 0.25 in
  let i_buf = gm_req *. vov /. 2. in
  let out_dc_guess = Float.max 0.5 (in_dc -. 1.2) in
  let driver =
    Mos.size
      ~vds:(vdd -. out_dc_guess)
      ~vsb:out_dc_guess ~process nmos
      (Mos.By_gm_id { gm = gm_req; ids = i_buf; l = 2. *. process.Proc.lmin })
  in
  let sink =
    Mos.size ~vds:out_dc_guess ~vsb:0. ~process nmos
      (Mos.By_id_vov
         { ids = i_buf; vov = sink_vov; l = 2. *. process.Proc.lmin })
  in
  let g_total = driver.Mos.gm +. driver.Mos.gmb +. driver.Mos.gds +. sink.Mos.gds in
  let gain_buf = driver.Mos.gm /. g_total in
  let out_dc = in_dc -. driver.Mos.vgs in
  ({ driver; sink; i_buf; gain_buf }, out_dc)

(* Second stage: PMOS common-source whose V_GS is forced equal to the
   first-stage mirror diode's, so its overdrive is inherited and its
   current is a ratio of the tail current. *)
let design_stage2 (process : Proc.t) ~(diff : Diff_pair.design) ~gm1 ~cc ~cl =
  let sink_vov =
    diff.Diff_pair.tail.Bias.Current_mirror.spec.Bias.Current_mirror.vov
  in
  let pmos = process.Proc.pmos and nmos = process.Proc.nmos in
  let vdd = process.Proc.vdd in
  let load = diff.Diff_pair.load_dev in
  let vov6 =
    Float.max 0.1 (load.Mos.vgs -. Mos.est_vth pmos ~vsb:0.)
  in
  (* Pole-splitting requirement: gm6 >= 2.2·gm1·CL/Cc. *)
  let gm6 = 2.2 *. gm1 *. cl /. cc in
  let i2 = gm6 *. vov6 /. 2. in
  let l = load.Mos.geom.Mos.l in
  let driver =
    Mos.size ~vds:(vdd /. 2.) ~vsb:0. ~process pmos
      (Mos.By_gm_id { gm = gm6; ids = i2; l })
  in
  let sink =
    Mos.size ~vds:(vdd /. 2.) ~vsb:0. ~process nmos
      (Mos.By_id_vov { ids = i2; vov = sink_vov; l })
  in
  let gain2 = driver.Mos.gm /. (driver.Mos.gds +. sink.Mos.gds) in
  { driver; sink; i2; gain2; cc; rz = 1. /. gm6 }

let assemble (process : Proc.t) spec ~diff ~stage2 ~buffer ~c_internal =
  let vdd = process.Proc.vdd in
  let a1 = Float.abs diff.Diff_pair.gain in
  let a2 = match stage2 with Some s -> s.gain2 | None -> 1. in
  let ab = match buffer with Some b -> b.gain_buf | None -> 1. in
  let gain = a1 *. a2 *. ab in
  let gm1 = diff.Diff_pair.gm in
  let buffer_loading =
    match buffer with
    | Some b -> 0.25 *. (b.driver.Mos.ss.Mos.cgs +. b.driver.Mos.ss.Mos.cgb)
    | None -> 0.
  in
  let c_comp =
    match (stage2, c_internal) with
    | Some s, _ ->
      (* Miller node: the explicit Cc plus the second-stage driver's
         gate-drain overlap (an un-nulled Miller path) and the first
         stage's own output parasitics. *)
      s.cc +. s.driver.Mos.ss.Mos.cgd +. diff_output_parasitic diff
    | None, Some c -> c +. diff_output_parasitic diff +. buffer_loading
    | None, None -> spec.cl +. diff_output_parasitic diff +. buffer_loading
  in
  let ugf = gm1 /. (2. *. Float.pi *. c_comp) in
  let slew_rate =
    let sr1 = diff.Diff_pair.spec.Diff_pair.itail /. c_comp in
    match stage2 with
    | Some s -> Float.min sr1 (s.i2 /. spec.cl)
    | None -> sr1
  in
  let zout =
    match buffer with
    | Some b -> 1. /. (b.driver.Mos.gm +. b.driver.Mos.gmb)
    | None -> (
      match stage2 with
      | Some s -> 1. /. (s.driver.Mos.gds +. s.sink.Mos.gds)
      | None -> diff.Diff_pair.rout)
  in
  let phase_margin =
    match stage2 with
    | Some s ->
      let p2 = s.driver.Mos.gm /. (2. *. Float.pi *. spec.cl) in
      90. -. deg_atan (ugf /. p2)
    | None -> (
      match buffer with
      | Some b ->
        let p2 = b.driver.Mos.gm /. (2. *. Float.pi *. spec.cl) in
        90. -. deg_atan (ugf /. p2)
      | None -> 88.)
  in
  let i2 = match stage2 with Some s -> s.i2 | None -> 0. in
  let i_buf = match buffer with Some b -> b.i_buf | None -> 0. in
  (* Reference branch + tail (counted inside the diff design) + stage
     currents. *)
  let dc_power = diff.Diff_pair.perf.Perf.dc_power +. (vdd *. (i2 +. i_buf)) in
  let gate_area =
    diff.Diff_pair.perf.Perf.gate_area
    +. (match stage2 with
       | Some s ->
         Mos.gate_area s.driver.Mos.geom +. Mos.gate_area s.sink.Mos.geom
       | None -> 0.)
    +.
    match buffer with
    | Some b ->
      Mos.gate_area b.driver.Mos.geom +. Mos.gate_area b.sink.Mos.geom
    | None -> 0.
  in
  let cap_area =
    let c_explicit =
      (match stage2 with Some s -> s.cc | None -> 0.)
      +. match c_internal with Some c -> c | None -> 0.
    in
    Proc.capacitor_area process c_explicit
  in
  let total_area =
    gate_area +. cap_area
    +. Proc.resistor_area process
         diff.Diff_pair.tail.Bias.Current_mirror.r_bias
  in
  let output_dc =
    match (stage2, buffer) with
    | Some _, None -> vdd /. 2.
    | Some _, Some b -> (vdd /. 2.) -. b.driver.Mos.vgs
    | None, None -> diff.Diff_pair.output_dc
    | None, Some b -> diff.Diff_pair.output_dc -. b.driver.Mos.vgs
  in
  let perf =
    {
      Perf.empty with
      Perf.gate_area;
      total_area;
      dc_power;
      gain = Some gain;
      ugf = Some ugf;
      cmrr = Some diff.Diff_pair.cmrr;
      slew_rate = Some slew_rate;
      zout = Some zout;
      current = Some spec.ibias;
      phase_margin = Some phase_margin;
      noise = diff.Diff_pair.perf.Perf.noise;
      offset_sigma = diff.Diff_pair.perf.Perf.offset_sigma;
    }
  in
  {
    spec;
    diff;
    stage2;
    buffer;
    c_internal;
    input_cm = diff.Diff_pair.input_cm;
    output_dc;
    gain;
    ugf;
    slew_rate;
    zout;
    phase_margin;
    perf;
  }

let design (process : Proc.t) spec =
  if spec.av <= 0. || spec.ugf <= 0. || spec.ibias <= 0. || spec.cl <= 0.
  then raise (Infeasible "non-positive spec values");
  (* Buffer gain is roughly 0.85; require the pre-buffer stages to make
     up for it, with a 30 % design margin on top. *)
  let margin = 1.3 in
  let ab_guess = if spec.buffer then 0.85 else 1. in
  let av_needed = spec.av *. margin /. ab_guess in
  (* The spec's Ibias is the bias-reference current; the tail runs at a
     mirror multiple of it so the input pair can realise the gm the UGF
     spec demands at a healthy overdrive (~0.2 V). *)
  let itail_for gm1 ~c_comp =
    let from_gm = 0.2 *. gm1 in
    let from_sr =
      match spec.sr with Some sr -> sr *. c_comp | None -> 0.
    in
    Float.max spec.ibias (Float.max from_gm from_sr)
  in
  let diff_spec gain_target ~itail =
    {
      Diff_pair.load = spec.diff_load;
      av = gain_target;
      itail;
      iref = spec.ibias;
      cl = spec.cl;
      tail_topology = spec.bias_topology;
    }
  in
  (* --- Single-stage attempt. --- *)
  let single =
    if spec.force_stage2 then None
    else
    (* Compensation capacitance: the load itself when unbuffered, an
       explicit internal cap when buffered (floored at 0.3 pF of
       realisable capacitance). *)
    let c_comp, c_internal =
      if spec.buffer then begin
        (* Buffered: decouple the comp cap from the load.  A 1 pF-class
           internal cap keeps the tail current modest. *)
        let c = Float.max 0.5e-12 (0.1 *. spec.cl) in
        (c, Some c)
      end
      else (spec.cl, None)
    in
    let gm1 = 2. *. Float.pi *. spec.ugf *. c_comp in
    let itail = itail_for gm1 ~c_comp in
    begin
      (* First pass ignores parasitics; the second resizes against the
         realised device capacitances at the output node, including the
         (bootstrapped) input capacitance of the buffer when present. *)
      let diff0 =
        Diff_pair.design_for_gm ~gm:gm1 process
          (diff_spec av_needed ~itail)
      in
      let buffer_loading =
        if spec.buffer then begin
          let b, _ = design_buffer process ~spec ~in_dc:3.8 in
          0.25 *. (b.driver.Mos.ss.Mos.cgs +. b.driver.Mos.ss.Mos.cgb)
        end
        else 0.
      in
      let c_eff = c_comp +. diff_output_parasitic diff0 +. buffer_loading in
      let gm1 = 2. *. Float.pi *. spec.ugf *. c_eff in
      let itail = itail_for gm1 ~c_comp:c_eff in
      let diff =
        Diff_pair.design_for_gm ~gm:gm1 process
          (diff_spec av_needed ~itail)
      in
      if Float.abs diff.Diff_pair.gain >= av_needed /. margin then begin
        let buffer, _ =
          if spec.buffer then begin
            let sink_vov =
              diff.Diff_pair.tail.Bias.Current_mirror.spec
                .Bias.Current_mirror.vov
            in
            let b, out_dc =
              design_buffer ~sink_vov process ~spec
                ~in_dc:diff.Diff_pair.output_dc
            in
            (Some b, out_dc)
          end
          else (None, diff.Diff_pair.output_dc)
        in
        Some (assemble process spec ~diff ~stage2:None ~buffer ~c_internal)
      end
      else None
    end
  in
  match single with
  | Some d -> d
  | None ->
    (* --- Two-stage (Miller-compensated). --- *)
    let cc = Float.max 1e-12 (0.22 *. spec.cl) in
    let a1_target = Float.max 10. (Float.sqrt av_needed) in
    (* First pass sizes against Cc alone; the second resizes against the
       realised Miller-node parasitics (stage-2 overlap + first-stage
       drains). *)
    let gm1 = 2. *. Float.pi *. spec.ugf *. cc in
    let itail = itail_for gm1 ~c_comp:cc in
    let diff0 =
      Diff_pair.design_for_gm ~gm:gm1 process (diff_spec a1_target ~itail)
    in
    let stage2_0 = design_stage2 process ~diff:diff0 ~gm1 ~cc ~cl:spec.cl in
    let c_eff =
      cc
      +. stage2_0.driver.Mos.ss.Mos.cgd
      +. diff_output_parasitic diff0
    in
    let gm1 = 2. *. Float.pi *. spec.ugf *. c_eff in
    let itail = itail_for gm1 ~c_comp:c_eff in
    let diff =
      Diff_pair.design_for_gm ~gm:gm1 process (diff_spec a1_target ~itail)
    in
    let stage2 = design_stage2 process ~diff ~gm1 ~cc ~cl:spec.cl in
    let a_total = Float.abs diff.Diff_pair.gain *. stage2.gain2 in
    if a_total < av_needed /. margin then
      raise
        (Infeasible
           (Printf.sprintf
              "gain %.0f unreachable: two stages deliver only %.0f" spec.av
              a_total));
    let buffer =
      if spec.buffer then begin
        let sink_vov =
          diff.Diff_pair.tail.Bias.Current_mirror.spec.Bias.Current_mirror.vov
        in
        let b, _ =
          design_buffer ~sink_vov process ~spec
            ~in_dc:(process.Proc.vdd /. 2.)
        in
        Some b
      end
      else None
    in
    assemble process spec ~diff ~stage2:(Some stage2) ~buffer
      ~c_internal:None

let fragment (process : Proc.t) design =
  let b = B.create ~title:"opamp" in
  let dfrag = Diff_pair.fragment process design.diff in
  let o1 =
    match (design.stage2, design.buffer) with
    | None, None -> "out"
    | _ -> "o1"
  in
  B.instance b ~prefix:"d1"
    ~port_map:
      [
        (Fragment.port dfrag "inp", "inp");
        (Fragment.port dfrag "inn", "inn");
        (Fragment.port dfrag "out", o1);
        (Fragment.port dfrag "vdd", "vdd");
        (Fragment.port dfrag "bias", "nbias");
      ]
    dfrag.Fragment.netlist;
  (match design.c_internal with
  | Some c -> B.capacitor b ~a:o1 ~b:"0" c
  | None -> ());
  let put (d : Mos.sized) ~dn ~gn ~sn ~bn =
    B.mosfet b d.Mos.card ~d:dn ~g:gn ~s:sn ~b:bn ~w:d.Mos.geom.Mos.w
      ~l:d.Mos.geom.Mos.l
  in
  let o2 =
    match design.stage2 with
    | None -> o1
    | Some s ->
      let o2 = match design.buffer with None -> "out" | Some _ -> "o2" in
      put s.driver ~dn:o2 ~gn:o1 ~sn:"vdd" ~bn:"vdd";
      put s.sink ~dn:o2 ~gn:"nbias" ~sn:"0" ~bn:"0";
      (* Miller compensation with a nulling resistor. *)
      let mid = B.fresh_node ~hint:"cz" b in
      B.resistor b ~a:o1 ~b:mid s.rz;
      B.capacitor b ~a:mid ~b:o2 s.cc;
      o2
  in
  (match design.buffer with
  | None -> ()
  | Some buf ->
    put buf.driver ~dn:"vdd" ~gn:o2 ~sn:"out" ~bn:"0";
    put buf.sink ~dn:"out" ~gn:"nbias" ~sn:"0" ~bn:"0");
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("inp", "inp"); ("inn", "inn"); ("out", "out") ]

let device_count design =
  let frag_count =
    (* diff pair: 2 pair + 2 loads + tail devices. *)
    4
    + List.length design.diff.Diff_pair.tail.Bias.Current_mirror.devices
  in
  frag_count
  + (match design.stage2 with Some _ -> 2 | None -> 0)
  + match design.buffer with Some _ -> 2 | None -> 0

let describe design =
  Printf.sprintf "%s + %s%s%s, %d devices"
    (Bias.mirror_topology_name design.spec.bias_topology)
    (Diff_pair.load_name design.spec.diff_load)
    (match design.stage2 with Some _ -> " + CS2" | None -> "")
    (match design.buffer with Some _ -> " + buffer" | None -> "")
    (device_count design)
