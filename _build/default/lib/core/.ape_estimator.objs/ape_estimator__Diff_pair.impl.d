lib/core/diff_pair.ml: Ape_circuit Ape_device Ape_process Ape_util Bias Float Fragment List Perf
