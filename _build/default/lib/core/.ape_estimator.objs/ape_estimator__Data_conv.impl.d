lib/core/data_conv.ml: Ape_circuit Ape_process Float Fragment List Opamp Perf Printf
