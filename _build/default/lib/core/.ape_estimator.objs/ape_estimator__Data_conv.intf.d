lib/core/data_conv.mli: Ape_process Fragment Opamp Perf
