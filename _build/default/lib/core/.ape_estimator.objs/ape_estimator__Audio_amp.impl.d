lib/core/audio_amp.ml: Ape_circuit Ape_device Ape_process Float Fragment Opamp Perf
