lib/core/gain_stage.ml: Ape_circuit Ape_device Ape_process Ape_util Float Fragment List Perf Printf
