lib/core/filter.mli: Ape_process Fragment Opamp Perf
