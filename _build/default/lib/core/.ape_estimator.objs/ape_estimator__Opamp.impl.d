lib/core/opamp.ml: Ape_circuit Ape_device Ape_process Bias Diff_pair Float Fragment List Perf Printf
