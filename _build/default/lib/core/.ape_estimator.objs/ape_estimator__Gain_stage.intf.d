lib/core/gain_stage.mli: Ape_device Ape_process Fragment Perf
