lib/core/equations.ml: Ape_symbolic
