lib/core/sample_hold.mli: Ape_process Closed_loop Fragment Perf
