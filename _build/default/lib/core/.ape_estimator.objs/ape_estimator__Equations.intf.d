lib/core/equations.mli: Ape_symbolic
