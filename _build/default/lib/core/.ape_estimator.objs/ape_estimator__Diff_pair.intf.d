lib/core/diff_pair.mli: Ape_device Ape_process Bias Fragment Perf
