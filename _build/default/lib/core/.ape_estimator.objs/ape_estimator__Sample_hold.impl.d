lib/core/sample_hold.ml: Ape_circuit Ape_process Closed_loop Float Fragment Opamp Perf
