lib/core/fragment.mli: Ape_circuit
