lib/core/bias.mli: Ape_device Ape_process Fragment Perf
