lib/core/module_lib.ml: Ape_circuit Audio_amp Closed_loop Data_conv Filter Fragment Printf Sample_hold
