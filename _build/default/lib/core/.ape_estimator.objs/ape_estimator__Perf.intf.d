lib/core/perf.mli: Format
