lib/core/verify.mli: Ape_circuit Ape_process Ape_spice Bias Diff_pair Gain_stage Module_lib Opamp Perf
