lib/core/closed_loop.mli: Ape_process Fragment Opamp Perf
