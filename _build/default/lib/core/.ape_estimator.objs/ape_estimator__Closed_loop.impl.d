lib/core/closed_loop.ml: Ape_circuit Ape_process Float Fragment List Opamp Perf Printf
