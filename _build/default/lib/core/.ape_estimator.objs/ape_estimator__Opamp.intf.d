lib/core/opamp.mli: Ape_device Ape_process Bias Diff_pair Fragment Perf
