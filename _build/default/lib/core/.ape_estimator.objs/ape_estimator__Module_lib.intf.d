lib/core/module_lib.mli: Ape_process Audio_amp Closed_loop Data_conv Filter Fragment Perf Sample_hold
