lib/core/audio_amp.mli: Ape_process Fragment Opamp Perf
