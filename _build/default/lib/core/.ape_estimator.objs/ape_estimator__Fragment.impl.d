lib/core/fragment.ml: Ape_circuit List
