lib/core/perf.ml: Ape_util Format List Option Printf
