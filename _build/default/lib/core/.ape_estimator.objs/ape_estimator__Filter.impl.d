lib/core/filter.ml: Ape_circuit Ape_process Ape_util Complex Float Fragment List Opamp Perf Printf
