lib/core/bias.ml: Ape_circuit Ape_device Ape_process Fragment List Perf
