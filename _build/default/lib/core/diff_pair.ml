module Proc = Ape_process.Process
module Mos = Ape_device.Mos
module B = Ape_circuit.Builder

type load = Nmos_diode | Cmos_mirror

let load_name = function
  | Nmos_diode -> "DiffNMOS"
  | Cmos_mirror -> "DiffCMOS"

type spec = {
  load : load;
  av : float;
  itail : float;
  iref : float;
  cl : float;
  tail_topology : Bias.mirror_topology;
}

let spec ?(av = 10.) ?(cl = 1e-12) ?(tail_topology = Bias.Simple) ?iref load
    ~itail =
  let iref = match iref with Some i -> i | None -> itail in
  { load; av; itail; iref; cl; tail_topology }

type design = {
  spec : spec;
  pair : Mos.sized;
  load_dev : Mos.sized;
  tail : Bias.Current_mirror.design;
  input_cm : float;
  output_dc : float;
  gain : float;
  acm : float;
  cmrr : float;
  ugf : float;
  slew_rate : float;
  gm : float;
  rout : float;
  perf : Perf.t;
}

(* Diode NMOS load hung from VDD with body effect: fixed point for the
   output DC level. *)
let diode_output_dc card ~vdd ~vov =
  let rec loop vout k =
    if k = 0 then vout
    else loop (vdd -. (Mos.est_vth card ~vsb:vout +. vov)) (k - 1)
  in
  loop (vdd /. 2.) 6

let tail_vds_assumed = 0.8

(* Assemble the design record once the pair and load are sized. *)
let finish (process : Proc.t) spec ~pair ~load_dev ~tail ~output_dc =
  let vdd = process.Proc.vdd in
  let g0 = 1. /. tail.Bias.Current_mirror.rout in
  let gmi = pair.Mos.gm and gdi = pair.Mos.gds in
  let gain, acm, cmrr, rout, ugf =
    match spec.load with
    | Cmos_mirror ->
      let gml = load_dev.Mos.gm and gdl = load_dev.Mos.gds in
      (* Paper equations (5)-(7). *)
      let gain = gmi /. (gdl +. gdi) in
      let acm = g0 *. gdi /. (2. *. gml *. (gdl +. gdi)) in
      let cmrr = 2. *. gmi *. gml /. (g0 *. gdi) in
      let rout = 1. /. (gdi +. gdl) in
      let ugf = gmi /. (2. *. Float.pi *. spec.cl) in
      (gain, acm, cmrr, rout, ugf)
    | Nmos_diode ->
      let gml' = load_dev.Mos.gm +. load_dev.Mos.gmb +. load_dev.Mos.gds in
      let gain = -.(gmi /. (2. *. gml')) in
      let acm = g0 /. (2. *. gml') in
      let cmrr = gmi /. g0 in
      let rout = 1. /. gml' in
      let ugf = gmi /. (2. *. 2. *. Float.pi *. spec.cl) in
      (gain, acm, cmrr, rout, ugf)
  in
  let slew_rate = spec.itail /. spec.cl in
  (* Input-referred noise at 1 kHz: channel thermal of the pair and the
     loads (reflected by (gm_l/gm_i)^2) plus the pair's 1/f term. *)
  let noise_density =
    let four_kt = 4. *. Ape_util.Units.k_boltzmann *. 300.15 in
    let gmi = pair.Mos.gm and gml = load_dev.Mos.gm in
    let thermal =
      2. *. four_kt *. (2. /. 3.) /. gmi *. (1. +. (gml /. gmi))
    in
    let flicker =
      let card = pair.Mos.card in
      let geom = pair.Mos.geom in
      let leff =
        Float.max 1e-9
          (geom.Mos.l -. (2. *. card.Ape_process.Model_card.ld))
      in
      2.
      *. card.Ape_process.Model_card.kf
      *. (pair.Mos.ids ** card.Ape_process.Model_card.af)
      /. (Ape_process.Model_card.cox card *. leff *. leff *. 1e3)
      /. (gmi *. gmi)
    in
    Float.sqrt (thermal +. flicker)
  in
  (* Pelgrom mismatch: sigma_VT = A_VT/sqrt(WL); loads reflect through
     the transconductance ratio. *)
  let offset_sigma =
    let sigma_vt (d : Mos.sized) =
      d.Mos.card.Ape_process.Model_card.avt
      /. Float.sqrt (Mos.gate_area d.Mos.geom)
    in
    let si = sigma_vt pair and sl = sigma_vt load_dev in
    let ratio = load_dev.Mos.gm /. pair.Mos.gm in
    Float.sqrt ((2. *. si *. si) +. (2. *. ratio *. ratio *. sl *. sl))
  in
  let gate_area =
    (2. *. Mos.gate_area pair.Mos.geom)
    +. (2. *. Mos.gate_area load_dev.Mos.geom)
    +. tail.Bias.Current_mirror.perf.Perf.gate_area
  in
  let total_area =
    gate_area +. Proc.resistor_area process tail.Bias.Current_mirror.r_bias
  in
  let dc_power = vdd *. (spec.iref +. spec.itail) in
  let perf =
    {
      Perf.empty with
      Perf.gate_area;
      total_area;
      dc_power;
      gain = Some gain;
      ugf = Some ugf;
      cmrr = Some cmrr;
      slew_rate = Some slew_rate;
      current = Some spec.itail;
      zout = Some rout;
      noise = Some noise_density;
      offset_sigma = Some offset_sigma;
    }
  in
  {
    spec;
    pair;
    load_dev;
    tail;
    input_cm = vdd /. 2.;
    output_dc;
    gain;
    acm;
    cmrr;
    ugf;
    slew_rate;
    gm = gmi;
    rout;
    perf;
  }

let build ?l ~gm_target (process : Proc.t) spec =
  let nmos = process.Proc.nmos and pmos = process.Proc.pmos in
  let vdd = process.Proc.vdd in
  let ihalf = spec.itail /. 2. in
  (* Stacked tail topologies (Wilson/Cascode) need ~V_GS + V_ov of
     compliance below the pair's sources; a lower overdrive keeps them
     saturated at a 2.5 V input common mode. *)
  let tail_vov =
    match spec.tail_topology with
    | Bias.Simple -> 0.35
    | Bias.Cascode | Bias.Wilson -> 0.18
  in
  let tail =
    Bias.Current_mirror.design ?l process
      (Bias.Current_mirror.spec ~vov:tail_vov ~topology:spec.tail_topology
         ~iin:spec.iref ~iout:spec.itail ())
  in
  let l = match l with Some l -> l | None -> 2. *. process.Proc.lmin in
  match spec.load with
  | Cmos_mirror ->
    let pair =
      Mos.size ~vds:(vdd /. 2.) ~vsb:tail_vds_assumed ~process nmos
        (Mos.By_gm_id { gm = gm_target; ids = ihalf; l })
    in
    let load_dev =
      Mos.size ~vds:1.0 ~vsb:0. ~process pmos
        (Mos.By_id_vov { ids = ihalf; vov = 0.3; l })
    in
    let output_dc = vdd -. load_dev.Mos.vgs in
    finish process spec ~pair ~load_dev ~tail ~output_dc
  | Nmos_diode ->
    let vov_load = 1.0 in
    let rec refine out_guess k =
      let load =
        Mos.size ~vds:(vdd -. out_guess) ~vsb:out_guess ~process nmos
          (Mos.By_id_vov { ids = ihalf; vov = vov_load; l })
      in
      let out = vdd -. load.Mos.vgs in
      if k = 0 || Float.abs (out -. out_guess) < 1e-3 then (load, out)
      else refine out (k - 1)
    in
    let load_dev, output_dc =
      refine (diode_output_dc nmos ~vdd ~vov:vov_load) 6
    in
    let pair =
      Mos.size
        ~vds:(output_dc -. tail_vds_assumed)
        ~vsb:tail_vds_assumed ~process nmos
        (Mos.By_gm_id { gm = gm_target; ids = ihalf; l })
    in
    finish process spec ~pair ~load_dev ~tail ~output_dc

(* Channel-length candidates tried when only a gain target is given. *)
let l_candidates (process : Proc.t) =
  List.map (fun k -> k *. process.Proc.lmin) [ 2.; 3.; 4.; 6.; 8. ]

let design ?l (process : Proc.t) spec =
  if spec.itail <= 0. then invalid_arg "Diff_pair.design: itail <= 0";
  let nmos = process.Proc.nmos and pmos = process.Proc.pmos in
  let vdd = process.Proc.vdd in
  let ihalf = spec.itail /. 2. in
  match spec.load with
  | Cmos_mirror ->
    (* Shortest candidate L that meets the gain in strong inversion. *)
    let candidates = match l with Some l -> [ l ] | None -> l_candidates process in
    let pick l =
      let gdi = Mos.est_gds nmos ~l ~ids:ihalf ~vds:(vdd /. 2.) in
      let gdl = Mos.est_gds pmos ~l ~ids:ihalf ~vds:(vdd /. 2.) in
      let gm = spec.av *. (gdi +. gdl) in
      if 2. *. ihalf /. gm >= 0.07 then Some (l, gm) else None
    in
    let l, gm_target =
      match List.find_map pick candidates with
      | Some r -> r
      | None ->
        let l = List.nth candidates (List.length candidates - 1) in
        let gdi = Mos.est_gds nmos ~l ~ids:ihalf ~vds:(vdd /. 2.) in
        let gdl = Mos.est_gds pmos ~l ~ids:ihalf ~vds:(vdd /. 2.) in
        (l, spec.av *. (gdi +. gdl))
    in
    build ~l ~gm_target process spec
  | Nmos_diode ->
    let l = match l with Some l -> l | None -> 2. *. process.Proc.lmin in
    (* Size the load first (it sets the gain denominator), then the
       pair's gm from the gain spec. *)
    let vov_load = 1.0 in
    let rec load_at out_guess k =
      let load =
        Mos.size ~vds:(vdd -. out_guess) ~vsb:out_guess ~process nmos
          (Mos.By_id_vov { ids = ihalf; vov = vov_load; l })
      in
      let out = vdd -. load.Mos.vgs in
      if k = 0 || Float.abs (out -. out_guess) < 1e-3 then load
      else load_at out (k - 1)
    in
    let load = load_at (diode_output_dc nmos ~vdd ~vov:vov_load) 6 in
    let gml' = load.Mos.gm +. load.Mos.gmb +. load.Mos.gds in
    let gm_target = 2. *. spec.av *. gml' in
    build ~l ~gm_target process spec

let design_for_gm ?l ~gm (process : Proc.t) spec =
  if gm <= 0. then invalid_arg "Diff_pair.design_for_gm: gm <= 0";
  let ihalf = spec.itail /. 2. in
  let l =
    match l with
    | Some l -> l
    | None ->
      (* Choose L so the single-stage gain reaches the spec's av at the
         prescribed gm: gain = gm / ((λn(L) + λp(L))·I/2). *)
      let nmos = process.Proc.nmos and pmos = process.Proc.pmos in
      let lam_at l =
        Ape_process.Model_card.lambda_at nmos l
        +. Ape_process.Model_card.lambda_at pmos l
      in
      let lam_needed = gm /. (Float.max 1. spec.av *. ihalf) in
      let l_ref = 2. *. process.Proc.lmin in
      let l_required = lam_at l_ref /. lam_needed *. l_ref in
      Ape_util.Float_ext.clamp ~lo:(2. *. process.Proc.lmin)
        ~hi:(50. *. process.Proc.lmin)
        l_required
  in
  build ~l ~gm_target:gm process spec

let fragment (process : Proc.t) design =
  let b = B.create ~title:(load_name design.spec.load) in
  let put (d : Mos.sized) ~dn ~gn ~sn ~bn =
    B.mosfet b d.Mos.card ~d:dn ~g:gn ~s:sn ~b:bn ~w:d.Mos.geom.Mos.w
      ~l:d.Mos.geom.Mos.l
  in
  (* Tail current sink: the Bias fragment spliced in as a child; its
     reference diode node is exported for enclosing levels to ratio
     additional sinks off. *)
  let tail_frag = Bias.Current_mirror.fragment process design.tail in
  B.instance b ~prefix:"tail"
    ~port_map:[ ("out", "tail"); ("vdd", "vdd") ]
    tail_frag.Fragment.netlist;
  let bias_node =
    match design.spec.tail_topology with
    | Bias.Simple -> "tail.min"
    | Bias.Cascode -> "tail.mmid"
    | Bias.Wilson -> "tail.my"
  in
  (* With the mirror load the output side is non-inverting w.r.t.
     (inp − inn); with diode loads the output sits on the inp side so
     the gain is negative, matching the paper's sign convention. *)
  (match design.spec.load with
  | Cmos_mirror ->
    put design.pair ~dn:"x1" ~gn:"inp" ~sn:"tail" ~bn:"0";
    put design.pair ~dn:"out" ~gn:"inn" ~sn:"tail" ~bn:"0";
    put design.load_dev ~dn:"x1" ~gn:"x1" ~sn:"vdd" ~bn:"vdd";
    put design.load_dev ~dn:"out" ~gn:"x1" ~sn:"vdd" ~bn:"vdd"
  | Nmos_diode ->
    put design.pair ~dn:"x1" ~gn:"inn" ~sn:"tail" ~bn:"0";
    put design.pair ~dn:"out" ~gn:"inp" ~sn:"tail" ~bn:"0";
    put design.load_dev ~dn:"vdd" ~gn:"vdd" ~sn:"x1" ~bn:"0";
    put design.load_dev ~dn:"vdd" ~gn:"vdd" ~sn:"out" ~bn:"0");
  Fragment.make (B.finish_unvalidated b)
    [
      ("vdd", "vdd");
      ("inp", "inp");
      ("inn", "inn");
      ("out", "out");
      ("bias", bias_node);
    ]
