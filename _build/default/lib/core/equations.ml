module Expr = Ape_symbolic.Expr
module Parser = Ape_symbolic.Parser
module Solver = Ape_symbolic.Solver

(* Stated in the parser's concrete syntax so the equations read like
   the paper. *)
let eq1_ids = Parser.parse "kp * w_over_l * (vgs - vth)^2 / 2"
let eq2_gm = Parser.parse "sqrt(2 * kp * w_over_l * abs(ids))"
let eq3_gmb = Parser.parse "gm * gamma / (2 * sqrt(phi + vsb))"
let eq4_gd = Parser.parse "lambda * ids / (1 + lambda * abs(vds))"
let eq5_adm = Parser.parse "gmi / (gdl + gdi)"
let eq6_acm = Parser.parse "-(g0 * gdi) / (2 * gml * (gdl + gdi))"
let eq7_cmrr = Parser.parse "2 * gmi * gml / (g0 * gdi)"

let all =
  [
    ("eq1", eq1_ids);
    ("eq2", eq2_gm);
    ("eq3", eq3_gmb);
    ("eq4", eq4_gd);
    ("eq5", eq5_adm);
    ("eq6", eq6_acm);
    ("eq7", eq7_cmrr);
  ]

let solve_wl_for_gm ~kp ~gm ~ids =
  let env = Expr.Env.of_list [ ("kp", kp); ("gm", gm); ("ids", ids) ] in
  Solver.solve_for ~var:"w_over_l" ~env
    (Solver.equation (Expr.var "gm") eq2_gm)

let sensitivity_gm_to_ids ~kp ~w_over_l ~ids =
  let env =
    Expr.Env.of_list [ ("kp", kp); ("w_over_l", w_over_l); ("ids", ids) ]
  in
  Solver.sensitivity ~var:"ids" ~env eq2_gm
