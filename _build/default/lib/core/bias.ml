module Proc = Ape_process.Process
module Mos = Ape_device.Mos
module B = Ape_circuit.Builder

type mirror_topology = Simple | Cascode | Wilson

let mirror_topology_name = function
  | Simple -> "CurrMirr"
  | Cascode -> "Cascode"
  | Wilson -> "Wilson"

let sum_gate_area devices =
  List.fold_left (fun acc (d : Mos.sized) -> acc +. Mos.gate_area d.Mos.geom) 0. devices

module Dc_volt = struct
  type spec = { vout : float; i : float }

  type design = {
    spec : spec;
    stack : Mos.sized list;
    r_bias : float;
    perf : Perf.t;
  }

  let design ?l (process : Proc.t) spec =
    if spec.i <= 0. then invalid_arg "Dc_volt.design: i <= 0";
    let l = match l with Some l -> l | None -> 2. *. process.Proc.lmin in
    let card = process.Proc.nmos in
    let vth = Mos.est_vth card ~vsb:0. in
    let vdd = process.Proc.vdd in
    if spec.vout <= vth +. 0.05 || spec.vout >= vdd -. 0.3 then
      invalid_arg "Dc_volt.design: vout outside feasible window";
    (* One diode if its overdrive stays moderate; otherwise split the
       drop over two stacked diodes (each with body effect on the upper
       one). *)
    let single_vov = spec.vout -. vth in
    let stack =
      if single_vov <= 2.0 then begin
        let vov = single_vov in
        [
          Mos.size ~vds:spec.vout ~vsb:0. ~process card
            (Mos.By_id_vov { ids = spec.i; vov; l });
        ]
      end
      else begin
        (* Equal split of vout across two diodes; the upper device sees
           vsb = lower vgs. *)
        let v_half = spec.vout /. 2. in
        let lower =
          Mos.size ~vds:v_half ~vsb:0. ~process card
            (Mos.By_id_vov { ids = spec.i; vov = v_half -. vth; l })
        in
        let vth_up = Mos.est_vth card ~vsb:v_half in
        let vov_up = v_half -. vth_up in
        if vov_up <= 0.05 then
          invalid_arg "Dc_volt.design: stacked diode infeasible";
        let upper =
          Mos.size ~vds:v_half ~vsb:v_half ~process card
            (Mos.By_id_vov { ids = spec.i; vov = vov_up; l })
        in
        [ upper; lower ]
      end
    in
    let r_bias = (vdd -. spec.vout) /. spec.i in
    let gate_area = sum_gate_area stack in
    let perf =
      {
        Perf.empty with
        Perf.gate_area;
        total_area = gate_area +. Proc.resistor_area process r_bias;
        dc_power = vdd *. spec.i;
        gain = Some spec.vout;
        current = Some spec.i;
        zout =
          (* Diode stack: 1/gm each in series. *)
          Some
            (List.fold_left
               (fun acc (d : Mos.sized) -> acc +. (1. /. d.Mos.gm))
               0. stack);
      }
    in
    { spec; stack; r_bias; perf }

  let fragment process design =
    let b = B.create ~title:"dcvolt" in
    B.resistor b ~a:"vdd" ~b:"out" design.r_bias;
    let rec chain node = function
      | [] -> ()
      | [ (last : Mos.sized) ] ->
        B.mosfet b last.Mos.card ~d:node ~g:node ~s:"0" ~b:"0"
          ~w:last.Mos.geom.Mos.w ~l:last.Mos.geom.Mos.l
      | (dev : Mos.sized) :: rest ->
        let mid = B.fresh_node ~hint:"stack" b in
        B.mosfet b dev.Mos.card ~d:node ~g:node ~s:mid ~b:"0"
          ~w:dev.Mos.geom.Mos.w ~l:dev.Mos.geom.Mos.l;
        chain mid rest
    in
    chain "out" design.stack;
    ignore process;
    Fragment.make (B.finish_unvalidated b) [ ("vdd", "vdd"); ("out", "out") ]
end

module Current_mirror = struct
  type spec = {
    iout : float;
    iin : float;
    topology : mirror_topology;
    vov : float;
  }

  let spec ?(vov = 0.35) ?(topology = Simple) ?iin ~iout () =
    let iin = match iin with Some i -> i | None -> iout in
    { iout; iin; topology; vov }

  type design = {
    spec : spec;
    devices : Mos.sized list;
    r_bias : float;
    v_in : float;
    rout : float;
    v_compliance : float;
    perf : Perf.t;
  }

  let design ?l (process : Proc.t) spec =
    if spec.iout <= 0. then invalid_arg "Current_mirror.design: iout <= 0";
    if spec.vov <= 0.05 then invalid_arg "Current_mirror.design: vov too small";
    let l = match l with Some l -> l | None -> 2. *. process.Proc.lmin in
    let card = process.Proc.nmos in
    let vdd = process.Proc.vdd in
    let i = spec.iout in
    let dev ?(ids = spec.iout) ?(vsb = 0.) ?(vds_frac = 0.5) () =
      Mos.size ~vds:(vds_frac *. vdd) ~vsb ~process card
        (Mos.By_id_vov { ids; vov = spec.vov; l })
    in
    match spec.topology with
    | Simple ->
      let m1 = dev ~ids:spec.iin ~vds_frac:0.2 () in
      let m2 = dev () in
      let v_in = m1.Mos.vgs in
      let r_bias = (vdd -. v_in) /. spec.iin in
      let rout = 1. /. m2.Mos.gds in
      let devices = [ m1; m2 ] in
      let gate_area = sum_gate_area devices in
      let perf =
        {
          Perf.empty with
          Perf.gate_area;
          total_area = gate_area +. Proc.resistor_area process r_bias;
          dc_power = vdd *. spec.iin;
          current = Some i;
          zout = Some rout;
        }
      in
      { spec; devices; r_bias; v_in; rout; v_compliance = spec.vov; perf }
    | Cascode ->
      (* Stacked diode input (M1 bottom diode, M3 upper diode); stacked
         output (M2 bottom, M4 cascode). *)
      let m1 = dev ~ids:spec.iin ~vds_frac:0.2 () in
      let vsb_up = m1.Mos.vgs in
      let m3 =
        Mos.size ~vds:(0.2 *. vdd) ~vsb:vsb_up ~process card
          (Mos.By_id_vov { ids = spec.iin; vov = spec.vov; l })
      in
      let m2 = dev ~vds_frac:0.1 () in
      let m4 =
        Mos.size ~vds:(0.4 *. vdd) ~vsb:vsb_up ~process card
          (Mos.By_id_vov { ids = i; vov = spec.vov; l })
      in
      let v_in = m1.Mos.vgs +. m3.Mos.vgs in
      let r_bias = (vdd -. v_in) /. spec.iin in
      (* rout ~ gm4·ro4·ro2. *)
      let rout = m4.Mos.gm /. (m4.Mos.gds *. m2.Mos.gds) in
      let devices = [ m1; m2; m3; m4 ] in
      let gate_area = sum_gate_area devices in
      let perf =
        {
          Perf.empty with
          Perf.gate_area;
          total_area = gate_area +. Proc.resistor_area process r_bias;
          dc_power = vdd *. spec.iin;
          current = Some i;
          zout = Some rout;
        }
      in
      {
        spec;
        devices;
        r_bias;
        v_in;
        rout;
        v_compliance = m2.Mos.vgs +. spec.vov;
        perf;
      }
    | Wilson ->
      (* M1: input device (gate at diode node), M2: cascode to the
         output, M3: bottom diode carrying the output current. *)
      let m3 = dev ~vds_frac:0.2 () in
      let vsb2 = m3.Mos.vgs in
      let m2 =
        Mos.size ~vds:(0.4 *. vdd) ~vsb:vsb2 ~process card
          (Mos.By_id_vov { ids = i; vov = spec.vov; l })
      in
      let m1 = dev ~ids:spec.iin ~vds_frac:0.3 () in
      let v_in = m3.Mos.vgs +. m2.Mos.vgs in
      let r_bias = (vdd -. v_in) /. spec.iin in
      (* rout ~ gm2·ro2·(R_bias ∥ ro1): the resistor-biased input branch
         loads the feedback node and caps the boost. *)
      let ro1 = 1. /. m1.Mos.gds in
      let r_node = r_bias *. ro1 /. (r_bias +. ro1) in
      let rout = m2.Mos.gm /. m2.Mos.gds *. r_node in
      let devices = [ m1; m2; m3 ] in
      let gate_area = sum_gate_area devices in
      let perf =
        {
          Perf.empty with
          Perf.gate_area;
          total_area = gate_area +. Proc.resistor_area process r_bias;
          dc_power = vdd *. spec.iin;
          current = Some i;
          zout = Some rout;
        }
      in
      {
        spec;
        devices;
        r_bias;
        v_in;
        rout;
        v_compliance = m3.Mos.vgs +. spec.vov;
        perf;
      }

  let fragment process design =
    ignore process;
    let b = B.create ~title:(mirror_topology_name design.spec.topology) in
    let put (dev : Mos.sized) ~d ~g ~s =
      B.mosfet b dev.Mos.card ~d ~g ~s ~b:"0" ~w:dev.Mos.geom.Mos.w
        ~l:dev.Mos.geom.Mos.l
    in
    (match (design.spec.topology, design.devices) with
    | Simple, [ m1; m2 ] ->
      B.resistor b ~a:"vdd" ~b:"min" design.r_bias;
      put m1 ~d:"min" ~g:"min" ~s:"0";
      put m2 ~d:"out" ~g:"min" ~s:"0"
    | Cascode, [ m1; m2; m3; m4 ] ->
      B.resistor b ~a:"vdd" ~b:"min" design.r_bias;
      put m3 ~d:"min" ~g:"min" ~s:"mmid";
      put m1 ~d:"mmid" ~g:"mmid" ~s:"0";
      put m4 ~d:"out" ~g:"min" ~s:"mcas";
      put m2 ~d:"mcas" ~g:"mmid" ~s:"0"
    | Wilson, [ m1; m2; m3 ] ->
      B.resistor b ~a:"vdd" ~b:"min" design.r_bias;
      put m1 ~d:"min" ~g:"my" ~s:"0";
      put m2 ~d:"out" ~g:"min" ~s:"my";
      put m3 ~d:"my" ~g:"my" ~s:"0"
    | (Simple | Cascode | Wilson), _ ->
      invalid_arg "Current_mirror.fragment: malformed design");
    Fragment.make (B.finish_unvalidated b) [ ("vdd", "vdd"); ("out", "out") ]
end
