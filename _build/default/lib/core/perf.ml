type t = {
  gate_area : float;
  total_area : float;
  dc_power : float;
  gain : float option;
  ugf : float option;
  bandwidth : float option;
  cmrr : float option;
  slew_rate : float option;
  zout : float option;
  current : float option;
  offset : float option;
  phase_margin : float option;
  noise : float option;
  offset_sigma : float option;
}

let empty =
  {
    gate_area = 0.;
    total_area = 0.;
    dc_power = 0.;
    gain = None;
    ugf = None;
    bandwidth = None;
    cmrr = None;
    slew_rate = None;
    zout = None;
    current = None;
    offset = None;
    phase_margin = None;
    noise = None;
    offset_sigma = None;
  }

let cmrr_db t =
  Option.map (fun c -> Ape_util.Float_ext.db_of_gain c) t.cmrr

let attr_list t =
  let eng = Ape_util.Units.to_eng in
  let base =
    [
      ("gate_area", Printf.sprintf "%.1f um^2" (t.gate_area /. 1e-12));
      ("total_area", Printf.sprintf "%.1f um^2" (t.total_area /. 1e-12));
      ("dc_power", eng t.dc_power ^ "W");
    ]
  in
  let opt name unit v =
    match v with Some x -> [ (name, eng x ^ unit) ] | None -> []
  in
  base
  @ opt "gain" "" t.gain
  @ opt "ugf" "Hz" t.ugf
  @ opt "bandwidth" "Hz" t.bandwidth
  @ (match cmrr_db t with
    | Some db -> [ ("cmrr", Printf.sprintf "%.1f dB" db) ]
    | None -> [])
  @ opt "slew_rate" "V/s" t.slew_rate
  @ opt "zout" "Ohm" t.zout
  @ opt "current" "A" t.current
  @ opt "offset" "V" t.offset
  @ (match t.phase_margin with
    | Some pm -> [ ("phase_margin", Printf.sprintf "%.1f deg" pm) ]
    | None -> [])
  @ opt "noise" "V/rtHz" t.noise
  @ opt "offset_sigma" "V" t.offset_sigma

let pp fmt t =
  Format.fprintf fmt "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%s=%s" k v)
    (attr_list t);
  Format.fprintf fmt "}"
