(** The paper's symbolic performance equations, as first-class
    {!Ape_symbolic.Expr} values.

    §4 of the paper presents the estimator as a library of "symbolic
    equations which relate the performance of the components to the
    circuit topology", numbered (1)–(7).  This module states them
    symbolically so they can be inspected, differentiated for
    sensitivities and inverted by the generic solver; the test suite
    cross-checks them against the hand-coded estimation functions
    (design choice D5 in DESIGN.md).

    Variable naming (all SI): [kp] (µC_ox), [w_over_l], [ids], [vgs],
    [vds], [vsb], [vth], [gamma], [phi] (2φ_f), [lambda], [gm], [gmi],
    [gml], [gdi], [gdl], [g0]. *)

val eq1_ids : Ape_symbolic.Expr.t
(** (1)  I_DS = KP·(W/L)·(V_GS − V_th)²/2 — saturation drain current. *)

val eq2_gm : Ape_symbolic.Expr.t
(** (2)  g_m = √(2·KP·(W/L)·|I_DS|)  (the paper's √(4·KP′·…) with
    KP′ = µC_ox/2; see DESIGN.md §6). *)

val eq3_gmb : Ape_symbolic.Expr.t
(** (3)  g_mb = g_m·γ / (2·√(2φ_f + V_SB)). *)

val eq4_gd : Ape_symbolic.Expr.t
(** (4)  g_d = λ·I_DS / (1 + λ·|V_DS|). *)

val eq5_adm : Ape_symbolic.Expr.t
(** (5)  A_dm ≈ g_mi / (g_dl + g_di). *)

val eq6_acm : Ape_symbolic.Expr.t
(** (6)  A_cm ≈ −g_0·g_di / (2·g_ml·(g_dl + g_di)). *)

val eq7_cmrr : Ape_symbolic.Expr.t
(** (7)  CMRR ≈ 2·g_mi·g_ml / (g_0·g_di). *)

val all : (string * Ape_symbolic.Expr.t) list
(** The seven equations keyed by "eq1".."eq7", for printing and
    generic iteration. *)

val solve_wl_for_gm :
  kp:float -> gm:float -> ids:float -> float
(** Invert (2) for W/L with the symbolic solver — the paper's
    "sizing process consists in solving these symbolic equations". *)

val sensitivity_gm_to_ids :
  kp:float -> w_over_l:float -> ids:float -> float
(** Normalised sensitivity (∂g_m/∂I·I/g_m) of (2); ½ for the square
    law, computed symbolically. *)
