module Proc = Ape_process.Process
module Mos = Ape_device.Mos
module B = Ape_circuit.Builder

type kind = Gain_nmos | Gain_cmos | Gain_cmosh | Follower_stage

let kind_name = function
  | Gain_nmos -> "GainNMOS"
  | Gain_cmos -> "GainCMOS"
  | Gain_cmosh -> "GainCMOSH"
  | Follower_stage -> "Follower"

type spec = { kind : kind; av : float; i : float; cl : float }

let spec ?(av = 10.) ?(cl = 1e-12) kind ~i = { kind; av; i; cl }

type design = {
  spec : spec;
  devices : (string * Mos.sized) list;
  r_bias : float option;
  input_dc : float;
  output_dc : float;
  needs_servo : bool;
  gain : float;
  ugf : float option;
  bandwidth : float;
  zout : float;
  perf : Perf.t;
}

let sum_gate_area devices =
  List.fold_left
    (fun acc (_, (d : Mos.sized)) -> acc +. Mos.gate_area d.Mos.geom)
    0. devices

let base_perf process design_gate_area ~r_bias ~i ~gain ~ugf ~bandwidth ~zout
    ~current =
  let r_area =
    match r_bias with Some r -> Proc.resistor_area process r | None -> 0.
  in
  {
    Perf.empty with
    Perf.gate_area = design_gate_area;
    total_area = design_gate_area +. r_area;
    dc_power = process.Proc.vdd *. i;
    gain = Some gain;
    ugf;
    bandwidth = Some bandwidth;
    zout = Some zout;
    current = Some current;
  }

(* Output DC of a diode NMOS load hung from VDD: vout = vdd - vgs2 where
   vgs2 includes body effect at vsb = vout.  Fixed-point iteration. *)
let nmos_diode_output_dc card ~vdd ~vov =
  let rec loop vout k =
    if k = 0 then vout
    else begin
      let vth = Mos.est_vth card ~vsb:vout in
      loop (vdd -. (vth +. vov)) (k - 1)
    end
  in
  loop (vdd /. 2.) 6

let design ?l (process : Proc.t) spec =
  if spec.i <= 0. then invalid_arg "Gain_stage.design: i <= 0";
  let nmos = process.Proc.nmos and pmos = process.Proc.pmos in
  let vdd = process.Proc.vdd in
  let i = spec.i and cl = spec.cl in
  let l_default = match l with Some l -> l | None -> 2. *. process.Proc.lmin in
  match spec.kind with
  | Gain_nmos ->
    let l = l_default in
    (* Diode load at a stiff overdrive for headroom; iterate the output
       level against the realised device's V_GS (body effect + CLM). *)
    let vov2 = 0.6 in
    let rec refine out_guess k =
      let load =
        Mos.size ~vds:(vdd -. out_guess) ~vsb:out_guess ~process nmos
          (Mos.By_id_vov { ids = i; vov = vov2; l })
      in
      let out = vdd -. load.Mos.vgs in
      if k = 0 || Float.abs (out -. out_guess) < 1e-3 then (load, out)
      else refine out (k - 1)
    in
    let m2, output_dc = refine (nmos_diode_output_dc nmos ~vdd ~vov:vov2) 6 in
    let g_load = m2.Mos.gm +. m2.Mos.gmb +. m2.Mos.gds in
    (* Required driver transconductance for the gain spec (driver gds
       folded in iteratively — one refinement pass suffices). *)
    let gds1_guess = Mos.est_gds nmos ~l ~ids:i ~vds:output_dc in
    let gm1 = spec.av *. (g_load +. gds1_guess) in
    let m1 =
      Mos.size ~vds:output_dc ~vsb:0. ~process nmos
        (Mos.By_gm_id { gm = gm1; ids = i; l })
    in
    let gain = -.(m1.Mos.gm /. (g_load +. m1.Mos.gds)) in
    let bandwidth = g_load /. (2. *. Float.pi *. cl) in
    let ugf = m1.Mos.gm /. (2. *. Float.pi *. cl) in
    let devices = [ ("driver", m1); ("load", m2) ] in
    let zout = 1. /. g_load in
    let perf =
      base_perf process (sum_gate_area devices) ~r_bias:None ~i ~gain
        ~ugf:(Some ugf) ~bandwidth ~zout ~current:i
    in
    {
      spec;
      devices;
      r_bias = None;
      input_dc = m1.Mos.vgs;
      output_dc;
      needs_servo = false;
      gain;
      ugf = Some ugf;
      bandwidth;
      zout;
      perf;
    }
  | Gain_cmos ->
    (* High-gain node: pick the shortest L that keeps the driver's
       overdrive above 80 mV for the requested gain. *)
    let candidates =
      match l with
      | Some l -> [ l ]
      | None ->
        List.map (fun k -> k *. process.Proc.lmin) [ 2.; 3.; 4.; 6.; 8. ]
    in
    let try_l l =
      let gds1 = Mos.est_gds nmos ~l ~ids:i ~vds:(vdd /. 2.) in
      let gds2 = Mos.est_gds pmos ~l ~ids:i ~vds:(vdd /. 2.) in
      let gm1 = spec.av *. (gds1 +. gds2) in
      let vov1 = 2. *. i /. gm1 in
      if vov1 >= 0.08 then Some (l, gm1) else None
    in
    let l, gm1 =
      match List.find_map try_l candidates with
      | Some r -> r
      | None ->
        invalid_arg
          (Printf.sprintf "Gain_stage.design: gain %.0f infeasible at %s A"
             spec.av (Ape_util.Units.to_eng i))
    in
    let m1 =
      Mos.size ~vds:(vdd /. 2.) ~vsb:0. ~process nmos
        (Mos.By_gm_id { gm = gm1; ids = i; l })
    in
    let m2 =
      Mos.size ~vds:(vdd /. 2.) ~vsb:0. ~process pmos
        (Mos.By_id_vov { ids = i; vov = 0.35; l })
    in
    let mb =
      Mos.size ~vds:(Mos.operating_vgs pmos
                       ~w_over_l:(m2.Mos.geom.Mos.w /. m2.Mos.geom.Mos.l)
                       ~ids:i ~vsb:0.)
        ~vsb:0. ~process pmos
        (Mos.By_id_vov { ids = i; vov = 0.35; l })
    in
    let v_bias = vdd -. mb.Mos.vgs in
    let r_bias = v_bias /. i in
    let gain = -.(m1.Mos.gm /. (m1.Mos.gds +. m2.Mos.gds)) in
    let ugf = m1.Mos.gm /. (2. *. Float.pi *. cl) in
    let bandwidth =
      (m1.Mos.gds +. m2.Mos.gds) /. (2. *. Float.pi *. cl)
    in
    let zout = 1. /. (m1.Mos.gds +. m2.Mos.gds) in
    let devices = [ ("driver", m1); ("load", m2); ("bias_diode", mb) ] in
    let perf =
      base_perf process (sum_gate_area devices) ~r_bias:(Some r_bias)
        ~i:(2. *. i) ~gain ~ugf:(Some ugf) ~bandwidth ~zout ~current:i
    in
    {
      spec;
      devices;
      r_bias = Some r_bias;
      input_dc = m1.Mos.vgs;
      output_dc = vdd /. 2.;
      needs_servo = true;
      gain;
      ugf = Some ugf;
      bandwidth;
      zout;
      perf;
    }
  | Gain_cmosh ->
    let l = l_default in
    (* PMOS diode load: vout = vdd - |vgs_p|, no body effect. *)
    let vov2 = 0.5 in
    let m2 =
      Mos.size ~vds:1.0 ~vsb:0. ~process pmos
        (Mos.By_id_vov { ids = i; vov = vov2; l })
    in
    let output_dc = vdd -. m2.Mos.vgs in
    let g_load = m2.Mos.gm +. m2.Mos.gds in
    let gds1_guess = Mos.est_gds nmos ~l ~ids:i ~vds:output_dc in
    let gm1 = spec.av *. (g_load +. gds1_guess) in
    let m1 =
      Mos.size ~vds:output_dc ~vsb:0. ~process nmos
        (Mos.By_gm_id { gm = gm1; ids = i; l })
    in
    let gain = -.(m1.Mos.gm /. (g_load +. m1.Mos.gds)) in
    let ugf = m1.Mos.gm /. (2. *. Float.pi *. cl) in
    let bandwidth = g_load /. (2. *. Float.pi *. cl) in
    let zout = 1. /. g_load in
    let devices = [ ("driver", m1); ("load", m2) ] in
    let perf =
      base_perf process (sum_gate_area devices) ~r_bias:None ~i ~gain
        ~ugf:(Some ugf) ~bandwidth ~zout ~current:i
    in
    {
      spec;
      devices;
      r_bias = None;
      input_dc = m1.Mos.vgs;
      output_dc;
      needs_servo = false;
      gain;
      ugf = Some ugf;
      bandwidth;
      zout;
      perf;
    }
  | Follower_stage ->
    let l = l_default in
    let vov = 0.3 in
    (* Aim the output at mid-supply; the input bias follows. *)
    let output_dc = vdd /. 2. in
    let m1 =
      Mos.size ~vds:(vdd -. output_dc) ~vsb:output_dc ~process nmos
        (Mos.By_id_vov { ids = i; vov; l })
    in
    let sink =
      Mos.size ~vds:output_dc ~vsb:0. ~process nmos
        (Mos.By_id_vov { ids = i; vov = 0.35; l })
    in
    let diode =
      Mos.size ~vds:sink.Mos.vgs ~vsb:0. ~process nmos
        (Mos.By_id_vov { ids = i; vov = 0.35; l })
    in
    let r_bias = (vdd -. diode.Mos.vgs) /. i in
    let g_out = m1.Mos.gm +. m1.Mos.gmb +. m1.Mos.gds +. sink.Mos.gds in
    let gain = m1.Mos.gm /. g_out in
    let bandwidth = g_out /. (2. *. Float.pi *. spec.cl) in
    let zout = 1. /. (m1.Mos.gm +. m1.Mos.gmb) in
    let input_dc = output_dc +. m1.Mos.vgs in
    let devices = [ ("driver", m1); ("sink", sink); ("bias_diode", diode) ] in
    let perf =
      base_perf process (sum_gate_area devices) ~r_bias:(Some r_bias)
        ~i:(2. *. i) ~gain ~ugf:None ~bandwidth ~zout ~current:i
    in
    {
      spec;
      devices;
      r_bias = Some r_bias;
      input_dc;
      output_dc;
      needs_servo = false;
      gain;
      ugf = None;
      bandwidth;
      zout;
      perf;
    }

let fragment (process : Proc.t) design =
  let b = B.create ~title:(kind_name design.spec.kind) in
  let dev role = List.assoc role design.devices in
  let put (d : Mos.sized) ~dn ~gn ~sn ~bn =
    B.mosfet b d.Mos.card ~d:dn ~g:gn ~s:sn ~b:bn ~w:d.Mos.geom.Mos.w
      ~l:d.Mos.geom.Mos.l
  in
  (match design.spec.kind with
  | Gain_nmos ->
    put (dev "driver") ~dn:"out" ~gn:"in" ~sn:"0" ~bn:"0";
    put (dev "load") ~dn:"vdd" ~gn:"vdd" ~sn:"out" ~bn:"0"
  | Gain_cmos ->
    put (dev "driver") ~dn:"out" ~gn:"in" ~sn:"0" ~bn:"0";
    put (dev "load") ~dn:"out" ~gn:"pb" ~sn:"vdd" ~bn:"vdd";
    put (dev "bias_diode") ~dn:"pb" ~gn:"pb" ~sn:"vdd" ~bn:"vdd";
    (match design.r_bias with
    | Some r -> B.resistor b ~a:"pb" ~b:"0" r
    | None -> assert false)
  | Gain_cmosh ->
    put (dev "driver") ~dn:"out" ~gn:"in" ~sn:"0" ~bn:"0";
    put (dev "load") ~dn:"out" ~gn:"out" ~sn:"vdd" ~bn:"vdd"
  | Follower_stage ->
    put (dev "driver") ~dn:"vdd" ~gn:"in" ~sn:"out" ~bn:"0";
    put (dev "sink") ~dn:"out" ~gn:"nb" ~sn:"0" ~bn:"0";
    put (dev "bias_diode") ~dn:"nb" ~gn:"nb" ~sn:"0" ~bn:"0";
    (match design.r_bias with
    | Some r -> B.resistor b ~a:"vdd" ~b:"nb" r
    | None -> assert false));
  ignore process;
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("in", "in"); ("out", "out") ]
