type spec =
  | Audio_amp of { gain : float; bandwidth : float }
  | Sample_hold_m of Sample_hold.spec
  | Flash_adc_m of Data_conv.Flash_adc.spec
  | Dac_m of Data_conv.Dac.spec
  | Lowpass_m of Filter.lp_spec
  | Bandpass_m of Filter.bp_spec
  | Closed_loop_m of Closed_loop.spec
  | Comparator_m of Data_conv.Comparator.spec

type design =
  | D_audio of Audio_amp.design
  | D_sh of Sample_hold.design
  | D_adc of Data_conv.Flash_adc.design
  | D_dac of Data_conv.Dac.design
  | D_lpf of Filter.lp_design
  | D_bpf of Filter.bp_design
  | D_closed of Closed_loop.design
  | D_comp of Data_conv.Comparator.design

let design process = function
  | Audio_amp { gain; bandwidth } ->
    D_audio (Audio_amp.design process { Audio_amp.gain; bandwidth })
  | Sample_hold_m s -> D_sh (Sample_hold.design process s)
  | Flash_adc_m s -> D_adc (Data_conv.Flash_adc.design process s)
  | Dac_m s -> D_dac (Data_conv.Dac.design process s)
  | Lowpass_m s -> D_lpf (Filter.design_lp process s)
  | Bandpass_m s -> D_bpf (Filter.design_bp process s)
  | Closed_loop_m s -> D_closed (Closed_loop.design process s)
  | Comparator_m s -> D_comp (Data_conv.Comparator.design process s)

let fragment process = function
  | D_audio d -> Audio_amp.fragment process d
  | D_sh d -> Sample_hold.fragment process d
  | D_adc d -> Data_conv.Flash_adc.fragment process d
  | D_dac d -> Data_conv.Dac.fragment process d
  | D_lpf d -> Filter.fragment_lp process d
  | D_bpf d -> Filter.fragment_bp process d
  | D_closed d -> Closed_loop.fragment process d
  | D_comp d -> Data_conv.Comparator.fragment process d

let perf = function
  | D_audio d -> d.Audio_amp.perf
  | D_sh d -> d.Sample_hold.perf
  | D_adc d -> d.Data_conv.Flash_adc.perf
  | D_dac d -> d.Data_conv.Dac.perf
  | D_lpf d -> d.Filter.perf
  | D_bpf d -> d.Filter.perf
  | D_closed d -> d.Closed_loop.perf
  | D_comp d -> d.Data_conv.Comparator.perf

let name = function
  | D_audio _ -> "audio_amp"
  | D_sh _ -> "sample_hold"
  | D_adc d ->
    Printf.sprintf "flash_adc%d" d.Data_conv.Flash_adc.spec.Data_conv.Flash_adc.bits
  | D_dac d -> Printf.sprintf "dac%d" d.Data_conv.Dac.spec.Data_conv.Dac.bits
  | D_lpf d ->
    Printf.sprintf "sk_lpf%d" d.Filter.lp_spec.Filter.order
  | D_bpf _ -> "mfb_bpf"
  | D_closed d -> (
    match d.Closed_loop.spec.Closed_loop.kind with
    | Closed_loop.Inverting _ -> "inverting_amp"
    | Closed_loop.Non_inverting _ -> "noninverting_amp"
    | Closed_loop.Integrator _ -> "integrator"
    | Closed_loop.Adder _ -> "adder")
  | D_comp _ -> "comparator"

let device_count process design =
  let frag = fragment process design in
  Ape_circuit.Netlist.mosfet_count frag.Fragment.netlist
