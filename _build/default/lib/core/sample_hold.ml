module Proc = Ape_process.Process
module B = Ape_circuit.Builder

type spec = {
  gain : float;
  bandwidth : float;
  sr : float;
  c_hold : float;
  r_on : float;
}

let spec ?(c_hold = 10e-12) ?(r_on = 1e3) ~gain ~bandwidth ~sr () =
  { gain; bandwidth; sr; c_hold; r_on }

type design = {
  spec : spec;
  amp : Closed_loop.design;
  response_time_est : float;
  perf : Perf.t;
}

let design (process : Proc.t) spec =
  if spec.gain < 1. then invalid_arg "Sample_hold.design: gain < 1";
  let amp_spec =
    Closed_loop.spec ~cl:10e-12 ~sr:(2. *. spec.sr)
      ~bandwidth:spec.bandwidth
      (Closed_loop.Non_inverting { gain = spec.gain })
  in
  let amp = Closed_loop.design process amp_spec in
  (* Acquisition: switch RC to 1 % (4.6·τ) + amplifier linear settling
     (4.6 time constants of the closed-loop pole) + slew of a half-swing
     step. *)
  let tau_switch = spec.r_on *. spec.c_hold in
  let bw_cl = amp.Closed_loop.bandwidth_est in
  let t_linear = 4.6 /. (2. *. Float.pi *. bw_cl) in
  let sr_amp =
    match amp.Closed_loop.opamp.Opamp.perf.Perf.slew_rate with
    | Some s -> s
    | None -> spec.sr
  in
  let t_slew = process.Proc.vdd /. 2. /. sr_amp in
  let response_time_est = (4.6 *. tau_switch) +. t_linear +. t_slew in
  let perf =
    {
      amp.Closed_loop.perf with
      Perf.total_area =
        amp.Closed_loop.perf.Perf.total_area
        +. Proc.capacitor_area process spec.c_hold;
      slew_rate = Some sr_amp;
      bandwidth = Some bw_cl;
      gain = Some (Float.abs amp.Closed_loop.gain_est);
    }
  in
  { spec; amp; response_time_est; perf }

let fragment (process : Proc.t) design =
  let b = B.create ~title:"sample_hold" in
  let amp_frag = Closed_loop.fragment process design.amp in
  B.switch b ~ron:design.spec.r_on ~a:"in" ~b:"hold" ~ctrl:"ctrl";
  B.capacitor b ~a:"hold" ~b:"0" design.spec.c_hold;
  B.instance b ~prefix:"amp"
    ~port_map:
      [
        (Fragment.port amp_frag "in", "hold");
        (Fragment.port amp_frag "out", "out");
        (Fragment.port amp_frag "vdd", "vdd");
      ]
    amp_frag.Fragment.netlist;
  Fragment.make (B.finish_unvalidated b)
    [ ("vdd", "vdd"); ("in", "in"); ("ctrl", "ctrl"); ("out", "out") ]
