(** Level-3 operational amplifiers.

    The paper's general opamp structure (§4.3, after Gregorian & Temes):
    (1) a differential input amplifier, (2) an optional level-shift /
    gain stage, (3) an optional output buffer, each drawn from the
    level-2 library.  A topology here is: tail-source type (Mirror /
    Cascode / Wilson), differential-load type (DiffCMOS / DiffNMOS), an
    automatically inserted common-source second stage when the gain spec
    exceeds what one stage can deliver, and an optional source-follower
    buffer driven by an output-impedance spec.

    Sizing is bottom-up: the UGF spec fixes the input-pair
    transconductance through the compensation capacitance, the gain spec
    fixes channel lengths through λ(L), the Z_out spec fixes the buffer
    transconductance, and every device is then sized by the level-1
    equations. *)

type spec = {
  av : float;  (** required DC gain magnitude *)
  ugf : float;  (** required unity-gain frequency, Hz *)
  ibias : float;  (** input-stage tail current, A *)
  cl : float;  (** load capacitance, F *)
  buffer : bool;  (** include an output buffer stage *)
  zout : float option;  (** output-impedance requirement, Ω *)
  sr : float option;  (** slew-rate requirement, V/s (checked, reported) *)
  bias_topology : Bias.mirror_topology;
  diff_load : Diff_pair.load;
  area_max : float option;  (** area budget, m² (reported against) *)
  force_stage2 : bool;
      (** skip the single-stage attempt (the paper's audio amplifier is
          explicitly a two-stage design) *)
}

val spec :
  ?buffer:bool ->
  ?zout:float ->
  ?sr:float ->
  ?bias_topology:Bias.mirror_topology ->
  ?diff_load:Diff_pair.load ->
  ?cl:float ->
  ?area_max:float ->
  ?force_stage2:bool ->
  av:float ->
  ugf:float ->
  ibias:float ->
  unit ->
  spec
(** Defaults: no buffer, Mirror tail, DiffCMOS load, [cl] = 10 pF. *)

type second_stage = {
  driver : Ape_device.Mos.sized;  (** PMOS common-source device *)
  sink : Ape_device.Mos.sized;  (** NMOS current-sink load *)
  i2 : float;  (** stage current, A *)
  gain2 : float;  (** stage gain magnitude *)
  cc : float;  (** Miller compensation capacitance, F *)
  rz : float;  (** nulling resistor, Ω *)
}

type buffer_stage = {
  driver : Ape_device.Mos.sized;  (** NMOS follower *)
  sink : Ape_device.Mos.sized;
  i_buf : float;
  gain_buf : float;  (** < 1 *)
}

type design = {
  spec : spec;
  diff : Diff_pair.design;
  stage2 : second_stage option;
  buffer : buffer_stage option;
  c_internal : float option;
      (** explicit compensation cap at the first-stage output when the
          opamp is buffered but single-stage, F *)
  input_cm : float;
  output_dc : float;  (** expected DC level of the output node *)
  gain : float;  (** total estimated DC gain *)
  ugf : float;
  slew_rate : float;
  zout : float;
  phase_margin : float;
  perf : Perf.t;
}

exception Infeasible of string

val design : Ape_process.Process.t -> spec -> design
(** Raises {!Infeasible} when no topology in the family meets the
    spec (e.g. gain unreachable even with two stages at maximum L). *)

val fragment : Ape_process.Process.t -> design -> Fragment.t
(** Ports: [vdd], [inp], [inn], [out]. *)

val describe : design -> string
(** One-line topology summary, e.g.
    ["Wilson + DiffCMOS + CS2 + buffer, 11 devices"]. *)

val device_count : design -> int
