lib/circuit/builder.ml: Ape_device Ape_process Hashtbl List Netlist Printf
