lib/circuit/spice_parser.mli: Ape_process Netlist
