lib/circuit/netlist.mli: Ape_device Ape_process Format
