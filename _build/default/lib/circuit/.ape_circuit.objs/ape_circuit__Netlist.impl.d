lib/circuit/netlist.ml: Ape_device Ape_process Ape_util Buffer Format Hashtbl List Option Printf Set String
