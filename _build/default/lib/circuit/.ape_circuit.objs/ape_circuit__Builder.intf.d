lib/circuit/builder.mli: Ape_process Netlist
