lib/circuit/spice_parser.ml: Ape_device Ape_process Ape_symbolic Ape_util Char Hashtbl List Netlist Option Printf String
