(** Parser for a practical subset of SPICE netlist syntax.

    Supported cards: comments ([*]), continuations ([+]), [.MODEL]
    (delegated to {!Ape_process.Card_parser}), [.END], MOSFETs
    ([Mname d g s b model W=.. L=..]), resistors, capacitors, independent
    V/I sources ([DC x [AC y]] or a bare value), VCVS ([Ename p n cp cn
    gain]) and switches ([Wname a b ctrl RON=.. ROFF=.. VT=..]).

    Model references resolve against the deck's own [.MODEL] cards first,
    then the process cards (by name, or by the generic names
    [NMOS]/[PMOS]). *)

exception Parse_error of string

val parse :
  ?process:Ape_process.Process.t -> title:string -> string -> Netlist.t
(** Raises {!Parse_error} on malformed input.  The result is validated
    with {!Netlist.validate}. *)
