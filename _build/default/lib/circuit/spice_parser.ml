module Card = Ape_process.Model_card
module Card_parser = Ape_process.Card_parser
module Proc = Ape_process.Process
module Strings = Ape_util.Strings

exception Parse_error of string

let number word =
  match Ape_symbolic.Parser.parse_number word with
  | Some v -> v
  | None -> raise (Parse_error ("bad number: " ^ word))

let keyed_value words key =
  let prefix = key ^ "=" in
  List.find_map
    (fun w ->
      if Strings.starts_with_ci ~prefix w then
        Some
          (number (String.sub w (String.length prefix)
                     (String.length w - String.length prefix)))
      else None)
    words

let require_keyed words key name =
  match keyed_value words key with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "%s: missing %s=" name key))

(* DC/AC clauses: "DC 2.5 AC 1" (case-insensitive), or a bare value. *)
let parse_source_values name rest =
  let rec loop dc ac = function
    | [] -> (dc, ac)
    | w :: v :: tl when String.uppercase_ascii w = "DC" ->
      loop (number v) ac tl
    | w :: v :: tl when String.uppercase_ascii w = "AC" ->
      loop dc (number v) tl
    | [ v ] when dc = 0. -> (number v, ac)
    | w :: _ ->
      raise (Parse_error (Printf.sprintf "%s: unexpected token %s" name w))
  in
  loop 0. 0. rest

let parse ?(process = Proc.c12) ~title text =
  let text = Card_parser.join_lines text in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l ->
           String.length l > 0 && l.[0] <> '*'
           && not (Strings.starts_with_ci ~prefix:".end" l))
  in
  (* First pass: models. *)
  let models = Hashtbl.create 4 in
  Hashtbl.replace models "NMOS" process.Proc.nmos;
  Hashtbl.replace models "PMOS" process.Proc.pmos;
  Hashtbl.replace models
    (String.uppercase_ascii process.Proc.nmos.Card.name)
    process.Proc.nmos;
  Hashtbl.replace models
    (String.uppercase_ascii process.Proc.pmos.Card.name)
    process.Proc.pmos;
  List.iter
    (fun line ->
      if Strings.starts_with_ci ~prefix:".model" line then begin
        match Card_parser.parse_card line with
        | card ->
          Hashtbl.replace models (String.uppercase_ascii card.Card.name) card
        | exception Card_parser.Bad_card msg -> raise (Parse_error msg)
      end)
    lines;
  let find_model name =
    match Hashtbl.find_opt models (String.uppercase_ascii name) with
    | Some card -> card
    | None -> raise (Parse_error ("unknown model " ^ name))
  in
  (* Second pass: elements. *)
  let elements =
    List.filter_map
      (fun line ->
        if Strings.starts_with_ci ~prefix:".model" line then None
        else
          match Strings.split_words line with
          | [] -> None
          | name :: rest -> (
            let kind = Char.uppercase_ascii name.[0] in
            match (kind, rest) with
            | 'M', d :: g :: s :: b :: model :: params ->
              let card = find_model model in
              let w = require_keyed params "W" name in
              let l = require_keyed params "L" name in
              Some
                (Netlist.Mosfet
                   { name; card; d; g; s; b; geom = Ape_device.Mos.geom ~w ~l })
            | 'R', [ a; b; v ] ->
              Some (Netlist.Resistor { name; a; b; r = number v })
            | 'C', [ a; b; v ] ->
              Some (Netlist.Capacitor { name; a; b; c = number v })
            | 'V', p :: n :: rest ->
              let dc, ac = parse_source_values name rest in
              Some (Netlist.Vsource { name; p; n; dc; ac })
            | 'I', p :: n :: rest ->
              let dc, ac = parse_source_values name rest in
              Some (Netlist.Isource { name; p; n; dc; ac })
            | 'E', [ p; n; cp; cn; g ] ->
              Some (Netlist.Vcvs { name; p; n; cp; cn; gain = number g })
            | 'W', a :: b :: ctrl :: params ->
              let ron =
                Option.value ~default:1e3 (keyed_value params "RON")
              in
              let roff =
                Option.value ~default:1e12 (keyed_value params "ROFF")
              in
              let vthreshold =
                Option.value ~default:2.5 (keyed_value params "VT")
              in
              Some
                (Netlist.Switch { name; a; b; ctrl; ron; roff; vthreshold })
            | _ ->
              raise (Parse_error ("cannot parse line: " ^ line))))
      lines
  in
  let netlist = Netlist.make ~title elements in
  (match Netlist.validate netlist with
  | () -> ()
  | exception Netlist.Invalid_netlist msg -> raise (Parse_error msg));
  netlist
