(* The APE command-line tool.

     ape opamp --gain 200 --ugf 2meg [--buffer --zout 1k --wilson]
                [--verify] [--netlist]
     ape module (lpf|bpf|sh|adc|dac|amp|comparator) [options] [--verify]
     ape synth --gain 200 --ugf 2meg [--mode standalone|ape] [--seed N]
                [--chains 4 --jobs 4 --exchange-period 1]
                [--cache-quantum 1e-2 --cache-capacity 8192]
                [--mc-samples 200]
     ape mc opamp --gain 200 --ugf 2meg --samples 500 --jobs 4
                [--level estimate|simulate] [--sigma-scale 1.5] [--hist gain]
     ape sim FILE.sp [--out NODE] [--ac]
     ape verify [--level device|basic|opamp|module]... [--golden DIR]
                [--update] [--tsv] [--no-slew] [--no-golden]
                [--calibration CARD]
     ape calibrate [GRID.scm] --out card.calib [--points N] [--seed N]
                [--jobs N] [--tol 0.02] [--slew]
     ape serve [FILE... | -] [--watch DIR --once] [--jobs N --queue N]
                [--shed --fail-fast --timeout SEC] [--deterministic]
                [--out PATH]
     ape vase FILE.scm

   Numbers accept SPICE suffixes (2meg, 10u, 4.7k). *)

module E = Ape_estimator
module S = Ape_synth
module Mc = Ape_mc
let proc = Ape_process.Process.c12
let pf = Printf.printf
let eng = Ape_util.Units.to_eng

let number_conv =
  let parse s =
    match Ape_symbolic.Parser.parse_number s with
    | Some v -> Ok v
    | None -> Error (`Msg ("not a number: " ^ s))
  in
  Cmdliner.Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v)

open Cmdliner

(* ---------- shared infrastructure ---------- *)

(* Exit-code discipline: every subcommand maps an internal engine
   failure (MNA machinery error, Newton non-convergence, a numerically
   singular deck) to a clean message and exit code 1, never a raw
   backtrace or cmdliner's 125. *)
let guard f =
  try f () with
  | Ape_spice.Engine.Engine_error { analysis; node; detail } ->
    pf "engine error (%s%s): %s\n" analysis
      (match node with Some n -> " at " ^ n | None -> "")
      detail;
    1
  | Ape_spice.Dc.No_convergence msg ->
    pf "no convergence: %s\n" msg;
    1
  | Ape_spice.Transient.Step_failed t ->
    pf "transient step failed at t=%ss\n" (eng t);
    1
  | Ape_util.Matrix.Singular | Ape_util.Sparse.Singular ->
    pf "singular system: the deck has no unique solution\n";
    1
  | Ape_estimator.Opamp.Infeasible msg ->
    pf "infeasible: %s\n" msg;
    1
  (* Input-side failures get their own code (3): an unreadable job or
     spool file, or a structurally broken job spec.  See the exit-code
     table in the README. *)
  | Sys_error msg ->
    pf "%s\n" msg;
    3
  | Ape_serve.Reader.Error { pos; msg } ->
    pf "job spec %d:%d: %s\n" pos.Ape_serve.Reader.line
      pos.Ape_serve.Reader.col msg;
    3
  | Ape_calib.Card.Parse_error { pos; msg } ->
    pf "%s\n" (Ape_calib.Card.describe_error ~pos ~msg);
    3

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record observability data (solver counters, span timings, \
           histograms) during the run and print it afterwards.  Results \
           are bit-identical with or without this flag.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("dense", Ape_spice.Backend.Dense);
             ("sparse", Ape_spice.Backend.Sparse) ])
        (Ape_spice.Backend.current ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Linear-solver engine: $(b,dense) (the reference dense LU) or \
           $(b,sparse) (symbolic-once/numeric-many sparse LU).  Defaults \
           to the $(b,APE_ENGINE) environment variable, else dense.")

let with_trace trace f =
  if not trace then f ()
  else begin
    Ape_obs.enable ();
    Ape_obs.reset ();
    let finish () =
      pf "\n-- observability (--trace) --\n%s"
        (Ape_obs.render (Ape_obs.snapshot ()))
    in
    match f () with
    | code ->
      finish ();
      code
    | exception e ->
      finish ();
      raise e
  end

(* ---------- shared arguments ---------- *)

let calibration_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calibration" ] ~docv:"CARD"
        ~doc:
          "Calibration card (from $(b,ape calibrate)): apply its affine \
           per-attribute, per-region corrections to the estimates.")

let gain_arg =
  Arg.(required & opt (some number_conv) None & info [ "gain" ] ~doc:"DC gain requirement.")

let ugf_arg =
  Arg.(
    required
    & opt (some number_conv) None
    & info [ "ugf" ] ~doc:"Unity-gain frequency requirement (Hz).")

let ibias_arg =
  Arg.(
    value & opt number_conv 1e-6
    & info [ "ibias" ] ~doc:"Bias reference current (A).")

let cl_arg =
  Arg.(value & opt number_conv 10e-12 & info [ "cl" ] ~doc:"Load capacitance (F).")

let buffer_arg =
  Arg.(value & flag & info [ "buffer" ] ~doc:"Include an output buffer.")

let zout_arg =
  Arg.(
    value & opt (some number_conv) None
    & info [ "zout" ] ~doc:"Output impedance requirement (Ohm).")

let wilson_arg =
  Arg.(value & flag & info [ "wilson" ] ~doc:"Wilson tail current source.")

let cascode_arg =
  Arg.(value & flag & info [ "cascode" ] ~doc:"Cascode tail current source.")

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ] ~doc:"Also simulate the sized design (MNA).")

let netlist_arg =
  Arg.(value & flag & info [ "netlist" ] ~doc:"Print the elaborated SPICE netlist.")

let topology buffer wilson cascode zout =
  let bias =
    if wilson then E.Bias.Wilson
    else if cascode then E.Bias.Cascode
    else E.Bias.Simple
  in
  (buffer, bias, zout)

let print_perf label p = pf "%s: %s\n" label (Format.asprintf "%a" E.Perf.pp p)

(* ---------- ape opamp ---------- *)

let opamp_cmd =
  let run gain ugf ibias cl buffer zout wilson cascode verify netlist =
    let buffer, bias, zout = topology buffer wilson cascode zout in
    match
      E.Opamp.design proc
        (E.Opamp.spec ~buffer ?zout ~bias_topology:bias ~cl ~av:gain ~ugf
           ~ibias ())
    with
    | exception E.Opamp.Infeasible msg ->
      pf "infeasible: %s\n" msg;
      exit 1
    | d ->
      pf "topology: %s\n" (E.Opamp.describe d);
      print_perf "estimate" d.E.Opamp.perf;
      if verify then print_perf "simulated" (E.Verify.sim_opamp proc d);
      if netlist then begin
        let frag = E.Opamp.fragment proc d in
        print_string (Ape_circuit.Netlist.to_spice frag.E.Fragment.netlist)
      end;
      0
  in
  Cmd.v
    (Cmd.info "opamp" ~doc:"Size and estimate an operational amplifier.")
    Term.(
      const run $ gain_arg $ ugf_arg $ ibias_arg $ cl_arg $ buffer_arg
      $ zout_arg $ wilson_arg $ cascode_arg $ verify_arg $ netlist_arg)

(* ---------- ape module ---------- *)

let module_cmd =
  let kind_arg =
    let doc = "Module kind: lpf, bpf, sh, adc, dac, amp, comparator." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"KIND" ~doc)
  in
  let order_arg =
    Arg.(value & opt int 4 & info [ "order" ] ~doc:"Filter order (even).")
  in
  let fc_arg =
    Arg.(value & opt number_conv 1e3 & info [ "fc" ] ~doc:"Corner/centre frequency (Hz).")
  in
  let g_arg =
    Arg.(value & opt number_conv 2. & info [ "gain" ] ~doc:"Gain requirement.")
  in
  let bw_arg =
    Arg.(value & opt number_conv 20e3 & info [ "bw" ] ~doc:"Bandwidth requirement (Hz).")
  in
  let bits_arg =
    Arg.(value & opt int 4 & info [ "bits" ] ~doc:"Converter resolution.")
  in
  let delay_arg =
    Arg.(value & opt number_conv 5e-6 & info [ "delay" ] ~doc:"Delay/settling requirement (s).")
  in
  let run kind order fc gain bw bits delay verify netlist =
    let spec =
      match kind with
      | "lpf" -> E.Module_lib.Lowpass_m { E.Filter.order; f_cutoff = fc; r_base = 1e6 }
      | "bpf" ->
        E.Module_lib.Bandpass_m
          { E.Filter.f_center = fc; q = 1.; gain = Float.min gain 1.8; c_base = 10e-9 }
      | "sh" ->
        E.Module_lib.Sample_hold_m
          (E.Sample_hold.spec ~gain ~bandwidth:bw ~sr:1e4 ())
      | "adc" ->
        E.Module_lib.Flash_adc_m (E.Data_conv.Flash_adc.spec ~bits ~delay ())
      | "dac" -> E.Module_lib.Dac_m (E.Data_conv.Dac.spec ~bits ~settling:delay ())
      | "amp" -> E.Module_lib.Audio_amp { gain; bandwidth = bw }
      | "comparator" ->
        E.Module_lib.Comparator_m (E.Data_conv.Comparator.spec ~delay ())
      | other ->
        pf "unknown module kind %s\n" other;
        exit 1
    in
    let d = E.Module_lib.design proc spec in
    pf "module: %s\n" (E.Module_lib.name d);
    print_perf "estimate" (E.Module_lib.perf d);
    if verify then begin
      let sim = E.Verify.sim_module proc d in
      print_perf "simulated" sim.E.Verify.perf;
      (match sim.E.Verify.response_time with
      | Some t -> pf "response/delay: %ss\n" (eng t)
      | None -> ());
      match sim.E.Verify.f0 with
      | Some f -> pf "f0: %sHz\n" (eng f)
      | None -> ()
    end;
    if netlist then begin
      let frag = E.Module_lib.fragment proc d in
      print_string (Ape_circuit.Netlist.to_spice frag.E.Fragment.netlist)
    end;
    0
  in
  Cmd.v
    (Cmd.info "module" ~doc:"Size and estimate a level-4 analog module.")
    Term.(
      const run $ kind_arg $ order_arg $ fc_arg $ g_arg $ bw_arg $ bits_arg
      $ delay_arg $ verify_arg $ netlist_arg)

(* ---------- ape synth ---------- *)

let synth_cmd =
  let mode_arg =
    Arg.(
      value
      & opt (enum [ ("standalone", `Standalone); ("ape", `Ape) ]) `Ape
      & info [ "mode" ] ~doc:"standalone (wide intervals) or ape (+/-20%).")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let area_arg =
    Arg.(
      value & opt (some number_conv) None
      & info [ "area" ]
          ~doc:"Gate-area budget (m^2); default 1.3x the APE estimate.")
  in
  let mc_samples_arg =
    Arg.(
      value & opt int 0
      & info [ "mc-samples" ]
          ~doc:
            "Monte Carlo yield check on the synthesised design (0 = off).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Worker domains: annealing chains run on a persistent pool of \
             this many domains, and the yield check fans out over the same \
             count.  Results are independent of the value.")
  in
  let chains_arg =
    Arg.(
      value & opt int 1
      & info [ "chains" ]
          ~doc:
            "Parallel-tempering replicas (1 = classic sequential \
             annealing).")
  in
  let exchange_period_arg =
    Arg.(
      value & opt int 1
      & info [ "exchange-period" ]
          ~doc:"Cooling stages between replica-exchange sweeps.")
  in
  let cache_quantum_arg =
    Arg.(
      value & opt (some number_conv) None
      & info [ "cache-quantum" ]
          ~doc:
            "Estimate-cache grid size on unit-cube coordinates (default \
             1e-2).")
  in
  let cache_capacity_arg =
    Arg.(
      value & opt (some int) None
      & info [ "cache-capacity" ]
          ~doc:"Estimate-cache entries across all shards (default 8192).")
  in
  let run gain ugf ibias cl buffer zout wilson cascode mode seed area
      mc_samples jobs chains exchange_period cache_quantum cache_capacity
      calibration engine trace =
    Ape_spice.Backend.set engine;
    with_trace trace @@ fun () ->
    guard @@ fun () ->
    let calibration = Option.map Ape_calib.Card.load calibration in
    let buffer, bias, zout = topology buffer wilson cascode zout in
    let proto =
      {
        S.Opamp_problem.name = "cli";
        gain;
        ugf;
        area = 1.;
        ibias;
        curr_src = bias;
        buffer;
        zout;
        cl;
      }
    in
    let ape = S.Opamp_problem.ape_design proc proto in
    let area =
      match area with
      | Some a -> a
      | None -> 1.3 *. ape.E.Opamp.perf.E.Perf.gate_area
    in
    let row = { proto with S.Opamp_problem.area = area } in
    let mode =
      match mode with
      | `Standalone -> S.Opamp_problem.Wide
      | `Ape -> S.Opamp_problem.Ape_centered 0.2
    in
    let rng = Ape_util.Rng.create seed in
    let mc =
      if mc_samples <= 0 then None
      else Some { Mc.Run.samples = mc_samples; jobs; seed }
    in
    let r =
      S.Driver.run ?mc ~chains ~jobs ~exchange_period ?cache_quantum
        ?cache_capacity ?calibration ~rng proc ~mode row
    in
    pf "%s\n" r.S.Driver.comment;
    pf "gain=%s ugf=%s area=%.0f um^2 power=%s (%d evaluations)\n"
      (match r.S.Driver.gain with Some g -> Printf.sprintf "%.1f" g | None -> "-")
      (match r.S.Driver.ugf with Some u -> eng u | None -> "-")
      (r.S.Driver.area /. 1e-12)
      (eng r.S.Driver.power)
      r.S.Driver.stats.S.Anneal.evaluations;
    if r.S.Driver.stats.S.Anneal.chains > 1 then
      pf "chains=%d exchanges=%d/%d accepted\n"
        r.S.Driver.stats.S.Anneal.chains
        r.S.Driver.stats.S.Anneal.exchange_accepted
        r.S.Driver.stats.S.Anneal.exchanges;
    List.iter (fun (k, v) -> pf "  %-12s %s\n" k (eng v)) r.S.Driver.best_values;
    (* Wall time and cache statistics depend on scheduling and cannot
       be bit-identical across --jobs; keep them on their own prefixed
       lines so the CI determinism gate can filter them. *)
    pf "time: %.2f s\n" r.S.Driver.stats.S.Anneal.seconds;
    pf "cache: %d/%d hits (%.1f%%)\n" r.S.Driver.cache_hits
      r.S.Driver.cache_lookups
      (if r.S.Driver.cache_lookups = 0 then 0.
       else
         100. *. float_of_int r.S.Driver.cache_hits
         /. float_of_int r.S.Driver.cache_lookups);
    (match r.S.Driver.yield with
    | None -> ()
    | Some report ->
      pf "\npost-synthesis yield check:\n";
      print_string (Mc.Report.to_string report));
    if r.S.Driver.meets_spec then 0 else 2
  in
  Cmd.v
    (Cmd.info "synth" ~doc:"Synthesise an opamp by simulated annealing.")
    Term.(
      const run $ gain_arg $ ugf_arg $ ibias_arg $ cl_arg $ buffer_arg
      $ zout_arg $ wilson_arg $ cascode_arg $ mode_arg $ seed_arg $ area_arg
      $ mc_samples_arg $ jobs_arg $ chains_arg $ exchange_period_arg
      $ cache_quantum_arg $ cache_capacity_arg $ calibration_arg
      $ engine_arg $ trace_arg)

(* ---------- ape mc ---------- *)

let mc_cmd =
  let kind_arg =
    let doc = "Workload: opamp (more kinds as the library grows)." in
    Arg.(value & pos 0 string "opamp" & info [] ~docv:"KIND" ~doc)
  in
  let samples_arg =
    Arg.(value & opt int 500 & info [ "samples" ] ~doc:"Monte Carlo samples.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Worker domains (statistics are identical for every value; 0 \
             means the hardware-recommended count).")
  in
  let seed_arg = Arg.(value & opt int 1999 & info [ "seed" ] ~doc:"RNG seed.") in
  let level_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("estimate", Mc.Scenario.Estimate);
               ("simulate", Mc.Scenario.Simulate) ])
          Mc.Scenario.Estimate
      & info [ "level" ]
          ~doc:
            "estimate re-sizes with APE per die (fast); simulate re-measures \
             one nominal design per die with the SPICE substitute.")
  in
  let sigma_scale_arg =
    Arg.(
      value & opt number_conv 1.0
      & info [ "sigma-scale" ]
          ~doc:"Scale every variation sigma by this factor.")
  in
  let hist_arg =
    Arg.(
      value & opt_all string []
      & info [ "hist" ] ~docv:"METRIC"
          ~doc:"Print an ASCII histogram of this metric (repeatable).")
  in
  let run kind gain ugf ibias cl buffer zout wilson cascode samples jobs seed
      level sigma_scale hists engine trace =
    Ape_spice.Backend.set engine;
    with_trace trace @@ fun () ->
    guard @@ fun () ->
    if kind <> "opamp" then begin
      pf "unknown mc workload %s (only: opamp)\n" kind;
      exit 1
    end;
    if samples <= 0 then begin
      pf "--samples must be >= 1 (got %d)\n" samples;
      exit 1
    end;
    let jobs = if jobs = 0 then Mc.Pool.recommended_jobs () else jobs in
    let buffer, bias, zout = topology buffer wilson cascode zout in
    let spec =
      E.Opamp.spec ~buffer ?zout ~bias_topology:bias ~cl ~av:gain ~ugf ~ibias
        ()
    in
    let sigmas = Mc.Variation.scale sigma_scale Mc.Variation.default in
    let measure, checks =
      try Mc.Scenario.opamp ~sigmas ~level proc spec
      with E.Opamp.Infeasible msg ->
        pf "infeasible nominal design: %s\n" msg;
        exit 1
    in
    pf "workload: opamp (%s level), sigma scale %g\n"
      (Mc.Scenario.level_name level)
      sigma_scale;
    let report =
      Mc.Run.run ~checks { Mc.Run.samples; jobs; seed } ~measure
    in
    print_string (Mc.Report.to_string ~histograms:hists report);
    if report.Mc.Run.yield >= 1.0 then 0 else 2
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Monte Carlo process-variation and yield analysis.")
    Term.(
      const run $ kind_arg $ gain_arg $ ugf_arg $ ibias_arg $ cl_arg
      $ buffer_arg $ zout_arg $ wilson_arg $ cascode_arg $ samples_arg
      $ jobs_arg $ seed_arg $ level_arg $ sigma_scale_arg $ hist_arg
      $ engine_arg $ trace_arg)

(* ---------- ape sim ---------- *)

let sim_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"SPICE netlist.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~doc:"Output node for AC measurements.")
  in
  let det_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Engine-comparable output: sorted node voltages and AC \
             measurements with fixed formatting, omitting data that may \
             legitimately differ between engines (Newton iteration \
             counts).  Used by CI to diff dense against sparse.")
  in
  let run file out det engine trace =
    Ape_spice.Backend.set engine;
    with_trace trace @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    match
      Ape_circuit.Spice_parser.parse ~process:proc ~path:file ~title:file text
    with
    | exception Ape_circuit.Spice_parser.Parse_error d ->
      pf "%s" (Ape_circuit.Spice_parser.render d);
      1
    | netlist -> (
      guard @@ fun () ->
      match Ape_spice.Dc.solve netlist with
      | exception Ape_spice.Dc.No_convergence msg ->
        pf "DC did not converge: %s\n" msg;
        1
      | op ->
        (if det then
           List.iter
             (fun n -> pf "V(%s) = %.6g\n" n (Ape_spice.Dc.voltage op n))
             (List.sort compare (Ape_circuit.Netlist.nodes netlist))
         else pf "%s" (Format.asprintf "%a" Ape_spice.Dc.pp op));
        (match out with
        | None -> ()
        | Some node ->
          (* One preparation serves every measurement below. *)
          let prep = Ape_spice.Ac.prepare op in
          let module M = Ape_spice.Measure.Prepared in
          pf "AC (node %s):\n" node;
          pf "  |H(0)| = %.4g\n" (M.dc_gain ~out:node prep);
          (match M.f_minus_3db ~out:node prep with
          | Some f ->
            if det then pf "  f-3dB  = %.4g Hz\n" f
            else pf "  f-3dB  = %sHz\n" (eng f)
          | None -> ());
          (match M.unity_gain_frequency ~out:node prep with
          | Some f ->
            if det then pf "  UGF    = %.4g Hz\n" f
            else pf "  UGF    = %sHz\n" (eng f)
          | None -> ());
          (match M.phase_margin ~out:node prep with
          | Some pm -> pf "  PM     = %.1f deg\n" pm
          | None -> ());
          (* One adjoint solve covers every noise source (reciprocity);
             %.4g keeps the dense/sparse --deterministic diff byte-clean. *)
          match
            Ape_spice.Noise.input_referred_prepared ~out:node ~freq:1e3 prep
          with
          | v -> pf "  in-noise = %.4g V/rtHz @ 1kHz\n" v
          | exception Division_by_zero -> ());
        0)
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Solve a SPICE netlist (DC + AC measurements).")
    Term.(const run $ file_arg $ out_arg $ det_arg $ engine_arg $ trace_arg)

(* ---------- ape convert ---------- *)

let convert_cmd =
  let module Sp = Ape_circuit.Spice_parser in
  (* [string], not [file]: an unreadable deck is an input-side failure
     and must exit 3 through [guard], not cmdliner's 124. *)
  let file_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"SPICE netlist.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:"Write the canonical deck to $(docv) instead of stdout.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat parser warnings as errors (exit 1).")
  in
  let dialect_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("ngspice", Sp.Ngspice); ("hspice", Sp.Hspice);
               ("spice2", Sp.Spice2);
             ])
          Sp.Ngspice
      & info [ "dialect" ] ~docv:"DIALECT"
          ~doc:
            "Input dialect, which governs inline-comment characters: \
             ngspice (default; \\$ and ;), hspice (\\$ only) or spice2 \
             (none).")
  in
  let run file out strict dialect =
    guard @@ fun () ->
    let text = In_channel.with_open_text file In_channel.input_all in
    let r = Sp.parse_result ~process:proc ~dialect ~path:file ~title:"" text in
    List.iter
      (fun d -> Printf.eprintf "%s" (Sp.render d))
      r.Sp.diagnostics;
    if Sp.errors r <> [] || (strict && Sp.warnings r <> []) then 1
    else begin
      let canonical = Sp.to_canonical r in
      (match out with
      | None -> print_string canonical
      | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc canonical));
      0
    end
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Ingest a netlist (dialect-aware: .INCLUDE/.LIB, parameterized \
          .SUBCKT flattening, .PARAM expressions, analysis directives) and \
          print the flattened canonical form.  Diagnostics go to stderr \
          with source spans; the output reaches a print/parse fixpoint, so \
          converting the output again is byte-identical.")
    Term.(const run $ file_arg $ out_arg $ strict_arg $ dialect_arg)

(* ---------- ape verify ---------- *)

let verify_cmd =
  let module C = Ape_check in
  let level_arg =
    Arg.(
      value & opt_all string []
      & info [ "level" ] ~docv:"LEVEL"
          ~doc:
            "Hierarchy level to verify: device, basic, opamp, module \
             (repeatable; default all).")
  in
  let golden_arg =
    Arg.(
      value & opt (some string) (Some "test/golden")
      & info [ "golden" ] ~docv:"DIR"
          ~doc:"Golden-table directory; --no-golden skips the comparison.")
  in
  let no_golden_arg =
    Arg.(
      value & flag
      & info [ "no-golden" ] ~doc:"Tolerance gates only, no golden tables.")
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update" ]
          ~doc:
            "Promote the fresh values into the golden tables (equivalent to \
             APE_UPDATE_GOLDEN=1).")
  in
  let tsv_arg =
    Arg.(value & flag & info [ "tsv" ] ~doc:"Machine-readable TSV output.")
  in
  let no_slew_arg =
    Arg.(
      value & flag
      & info [ "no-slew" ]
          ~doc:"Skip the opamp transient slew measurement (faster).")
  in
  let run levels golden no_golden update tsv no_slew calibration engine
      trace =
    Ape_spice.Backend.set engine;
    with_trace trace @@ fun () ->
    guard @@ fun () ->
    let calibration = Option.map Ape_calib.Card.load calibration in
    let levels =
      match levels with
      | [] -> C.Tolerance.all_levels
      | names ->
        List.map
          (fun n ->
            match C.Tolerance.level_of_name n with
            | Some l -> l
            | None ->
              pf "unknown level %s (device, basic, opamp, module)\n" n;
              exit 1)
          names
    in
    let golden_dir = if no_golden then None else golden in
    let outcome =
      C.Check.run ~slew:(not no_slew) ?calibration ?golden_dir ~update
        ~levels proc
    in
    print_string (C.Check.render ~tsv outcome);
    if C.Check.ok outcome then 0 else 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Differential verification: size with APE, simulate, gate every \
          attribute against its tolerance and the golden tables.")
    Term.(
      const run $ level_arg $ golden_arg $ no_golden_arg $ update_arg
      $ tsv_arg $ no_slew_arg $ calibration_arg $ engine_arg $ trace_arg)

(* ---------- ape calibrate ---------- *)

let calibrate_cmd =
  let module C = Ape_check in
  let module Cal = Ape_calib in
  let grid_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"GRID"
          ~doc:
            "Grid spec file, e.g. (grid (points 32) (ugf 800k 14meg)); \
             every field optional, defaults bracket the paper's Table 3 \
             specs.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"CARD" ~doc:"Where to write the fitted card.")
  in
  let points_arg =
    Arg.(
      value & opt (some int) None
      & info [ "points" ] ~docv:"N" ~doc:"Override the grid point count.")
  in
  let seed_arg =
    Arg.(
      value & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Override the grid RNG seed.")
  in
  let jobs_arg =
    Arg.(
      value & opt (some int) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains evaluating grid points.  The card is \
             bit-identical for every value.")
  in
  let tol_arg =
    Arg.(
      value & opt number_conv 0.02
      & info [ "tol" ]
          ~doc:
            "Keep the identity correction wherever the raw max relative \
             error is already within this tolerance.")
  in
  let slew_arg =
    Arg.(
      value & flag
      & info [ "slew" ]
          ~doc:"Also run the transient slew measurement (slower).")
  in
  let run grid out points seed jobs tol slew engine trace =
    Ape_spice.Backend.set engine;
    with_trace trace @@ fun () ->
    guard @@ fun () ->
    let spec =
      match grid with
      | Some file -> Cal.Grid.load_spec file
      | None -> Cal.Grid.default
    in
    let spec =
      {
        spec with
        Cal.Grid.points = Option.value ~default:spec.Cal.Grid.points points;
        seed = Option.value ~default:spec.Cal.Grid.seed seed;
        jobs = Option.value ~default:spec.Cal.Grid.jobs jobs;
        slew = spec.Cal.Grid.slew || slew;
      }
    in
    let grid = Cal.Grid.run proc spec in
    pf "grid: %d points, %d evaluated, %d skipped\n"
      spec.Cal.Grid.points grid.Cal.Grid.evaluated grid.Cal.Grid.skipped;
    let card =
      C.Calibrate.fit ~slew:spec.Cal.Grid.slew ~tol
        ~extra:grid.Cal.Grid.samples proc
    in
    Cal.Card.save out card;
    let fitted =
      List.filter
        (fun e -> not (Cal.Card.is_identity e.Cal.Card.corr))
        card.Cal.Card.entries
    in
    pf "%-8s %-12s %-8s %12s %12s %5s %9s %9s\n" "level" "attr" "region"
      "scale" "bias" "n" "raw err" "cal err";
    List.iter
      (fun e ->
        pf "%-8s %-12s %-8s %12.6g %12.6g %5d %8.2f%% %8.2f%%\n"
          e.Cal.Card.level e.Cal.Card.attr
          (Cal.Card.region_name e.Cal.Card.region)
          e.Cal.Card.corr.Cal.Card.scale e.Cal.Card.corr.Cal.Card.bias
          e.Cal.Card.n
          (100. *. e.Cal.Card.raw_err)
          (100. *. e.Cal.Card.cal_err))
      card.Cal.Card.entries;
    pf "wrote %s (%d fits, %d non-identity)\n" out
      (List.length card.Cal.Card.entries)
      (List.length fitted);
    0
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Sweep a design grid with the estimator and the simulator, fit \
          per-attribute affine corrections and write a calibration card \
          for $(b,ape verify --calibration) / $(b,ape synth \
          --calibration).")
    Term.(
      const run $ grid_arg $ out_arg $ points_arg $ seed_arg $ jobs_arg
      $ tol_arg $ slew_arg $ engine_arg $ trace_arg)

(* ---------- ape serve ---------- *)

let serve_cmd =
  let module Sv = Ape_serve in
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"Job batch files ($(b,-) reads one batch from stdin).")
  in
  let watch_arg =
    Arg.(
      value & opt (some dir) None
      & info [ "watch" ] ~docv:"DIR"
          ~doc:
            "Spool directory: process every *.jobs file dropped there \
             (each is renamed *.jobs.done once answered).")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"With --watch, drain the spool once and exit instead of \
                polling forever.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs" ]
          ~doc:
            "Worker domains running jobs concurrently (0 = the \
             hardware-recommended count).  Fixed-seed results are \
             identical for every value.")
  in
  let queue_arg =
    Arg.(
      value & opt int 64
      & info [ "queue" ]
          ~doc:"Bounded in-flight window: at most this many admitted jobs \
                at once.")
  in
  let shed_arg =
    Arg.(
      value & flag
      & info [ "shed" ]
          ~doc:
            "When the window is full, refuse further jobs of the batch \
             with typed overloaded records instead of blocking \
             (backpressure policy).")
  in
  let fail_fast_arg =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Stop admitting jobs once a failure is collected; the \
             unsubmitted remainder is recorded cancelled.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some number_conv) None
      & info [ "timeout" ] ~docv:"SEC"
          ~doc:
            "Default per-job queue deadline: a job not started within \
             SEC seconds of submission records a timeout.  A job's own \
             (timeout ...) field wins.")
  in
  let deterministic_arg =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Omit scheduling-dependent record fields (wall seconds, \
             cache statistics) so fixed-seed batches render \
             bit-identically at any --jobs.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:
            "Result stream destination.  A directory gets one \
             $(i,batch).jsonl per batch; anything else is appended to \
             as a single file.  Default: stdout.")
  in
  let poll_arg =
    Arg.(
      value & opt number_conv 0.5
      & info [ "poll" ] ~docv:"SEC" ~doc:"Spool scan period for --watch.")
  in
  let max_batches_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-batches" ]
          ~doc:"Exit after this many batches (mainly for tests).")
  in
  let cache_quantum_arg =
    Arg.(
      value & opt (some number_conv) None
      & info [ "cache-quantum" ]
          ~doc:"Estimate-cache grid size (default 1e-2).")
  in
  let cache_capacity_arg =
    Arg.(
      value & opt int 8192
      & info [ "cache-capacity" ]
          ~doc:"Estimate-cache entries per synthesis fingerprint.")
  in
  let run files watch once jobs queue shed fail_fast timeout deterministic
      out poll max_batches cache_quantum cache_capacity trace =
    with_trace trace @@ fun () ->
    guard @@ fun () ->
    if queue < 1 then begin
      pf "--queue must be >= 1 (got %d)\n" queue;
      exit 3
    end;
    let jobs = if jobs = 0 then Ape_util.Pool.recommended_jobs () else jobs in
    if jobs < 1 then begin
      pf "--jobs must be >= 0 (got %d)\n" jobs;
      exit 3
    end;
    let config =
      {
        Sv.Scheduler.jobs;
        queue;
        policy = (if shed then Sv.Scheduler.Shed else Sv.Scheduler.Block);
        fail_fast;
        default_timeout = timeout;
      }
    in
    let runner = Sv.Runner.create ?cache_quantum ~cache_capacity proc in
    let pool = Ape_util.Pool.create ~workers:jobs in
    let stopping = ref false in
    let request_stop _ = stopping := true in
    (* SIGINT/SIGTERM finish the in-flight batch, then fall through to
       the one idempotent Pool.shutdown below. *)
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    (* Exit-code evidence across every batch (worst wins, 3 > 4 > 2). *)
    let saw_parse = ref false
    and saw_failed = ref false
    and saw_overloaded = ref false in
    let note (r : Sv.Record.t) =
      match r.Sv.Record.status with
      | Sv.Record.Parse_error _ -> saw_parse := true
      | Sv.Record.Failed _ | Sv.Record.Unmet | Sv.Record.Timeout
      | Sv.Record.Cancelled ->
        saw_failed := true
      | Sv.Record.Overloaded -> saw_overloaded := true
      | Sv.Record.Done -> ()
    in
    let out_channel_for batch =
      match out with
      | None -> (stdout, false)
      | Some path when Sys.file_exists path && Sys.is_directory path ->
        let base = Filename.remove_extension (Filename.basename batch) in
        let file = Filename.concat path (base ^ ".jsonl") in
        (open_out file, true)
      | Some path ->
        (open_out_gen [ Open_append; Open_creat ] 0o644 path, true)
    in
    let run_batch ~batch text =
      let oc, close = out_channel_for batch in
      Fun.protect
        ~finally:(fun () -> if close then close_out oc else flush oc)
        (fun () ->
          let emit r =
            note r;
            output_string oc (Sv.Record.render ~deterministic r);
            output_char oc '\n';
            flush oc
          in
          let summary =
            Sv.Scheduler.run_batch ~pool config runner ~batch ~emit
              (Sv.Job.parse_batch text)
          in
          output_string oc
            (Sv.Record.render_summary ~deterministic summary);
          output_char oc '\n')
    in
    let read_file path = In_channel.with_open_text path In_channel.input_all in
    List.iter
      (fun file ->
        if file = "-" then
          run_batch ~batch:"-" (In_channel.input_all In_channel.stdin)
        else run_batch ~batch:file (read_file file))
      files;
    (match watch with
    | None ->
      if files = [] then
        run_batch ~batch:"-" (In_channel.input_all In_channel.stdin)
    | Some dir ->
      ignore
        (Sv.Spool.watch ~poll ?max_batches
           ~stop:(fun () -> !stopping)
           ~once dir
           ~process:(fun path -> run_batch ~batch:path (read_file path))));
    Ape_util.Pool.shutdown pool;
    if !saw_parse then 3
    else if !saw_overloaded then 4
    else if !saw_failed then 2
    else 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Batch job service: run declarative estimate/synth/mc/sim/verify \
          jobs from files, stdin or a spool directory, streaming one \
          JSON-lines record per job.")
    Term.(
      const run $ files_arg $ watch_arg $ once_arg $ jobs_arg $ queue_arg
      $ shed_arg $ fail_fast_arg $ timeout_arg $ deterministic_arg $ out_arg
      $ poll_arg $ max_batches_arg $ cache_quantum_arg $ cache_capacity_arg
      $ trace_arg)

(* ---------- ape stats ---------- *)

let stats_cmd =
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("synth", `Synth); ("verify", `Verify) ]) `Synth
      & info [ "workload" ]
          ~doc:
            "Instrumented workload: synth (anneal a reference 200x/2MHz \
             opamp) or verify (run the differential checker without golden \
             tables).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the ape-obs/1 JSON document instead of ASCII tables.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Smaller workload: quick annealing schedule (synth) or no slew \
             transient (verify).")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed (synth workload).")
  in
  let run workload json quick seed =
    Ape_obs.enable ();
    Ape_obs.reset ();
    guard @@ fun () ->
    (match workload with
    | `Synth ->
      let proto =
        {
          S.Opamp_problem.name = "stats";
          gain = 200.;
          ugf = 2e6;
          area = 1.;
          ibias = 1e-6;
          curr_src = E.Bias.Simple;
          buffer = false;
          zout = None;
          cl = 10e-12;
        }
      in
      let ape = S.Opamp_problem.ape_design proc proto in
      let row =
        { proto with
          S.Opamp_problem.area = 1.3 *. ape.E.Opamp.perf.E.Perf.gate_area
        }
      in
      let schedule =
        if quick then S.Anneal.quick_schedule else S.Anneal.default_schedule
      in
      let rng = Ape_util.Rng.create seed in
      ignore
        (S.Driver.run ~schedule ~rng proc
           ~mode:(S.Opamp_problem.Ape_centered 0.2) row)
    | `Verify ->
      let module C = Ape_check in
      ignore (C.Check.run ~slew:(not quick) proc));
    let snap = Ape_obs.snapshot () in
    print_string (if json then Ape_obs.render_json snap else Ape_obs.render snap);
    0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run an instrumented workload and print the observability snapshot \
          (counters, gauges, histograms, span timings).")
    Term.(const run $ workload_arg $ json_arg $ quick_arg $ seed_arg)

(* ---------- ape vase ---------- *)

let vase_cmd =
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"System spec (S-expression).")
  in
  let run file =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Ape_vase.System.parse text with
    | exception Ape_vase.System.Spec_error msg ->
      pf "spec error: %s\n" msg;
      1
    | system ->
      let est = Ape_vase.System.estimate proc system in
      pf "system %s:\n" system.Ape_vase.System.name;
      List.iter
        (fun (label, d) ->
          pf "  %-14s %s\n" label
            (Format.asprintf "%a" E.Perf.pp (E.Module_lib.perf d)))
        est.Ape_vase.System.designs;
      pf "totals: gain=%.2f bw=%sHz area=%.0f um^2 power=%s\n"
        est.Ape_vase.System.gain_total
        (eng est.Ape_vase.System.bandwidth_min)
        (est.Ape_vase.System.area_total /. 1e-12)
        (eng est.Ape_vase.System.power_total);
      List.iter
        (fun (name, ok) -> pf "  %-12s %s\n" name (if ok then "MET" else "VIOLATED"))
        est.Ape_vase.System.meets;
      if List.for_all snd est.Ape_vase.System.meets then 0 else 2
  in
  Cmd.v
    (Cmd.info "vase" ~doc:"Estimate a system-level specification (VASE flow).")
    Term.(const run $ file_arg)

let () =
  let doc = "Analog Performance Estimator (DATE 1999 reproduction)" in
  let info = Cmd.info "ape" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            opamp_cmd; module_cmd; synth_cmd; mc_cmd; sim_cmd; convert_cmd;
            verify_cmd; calibrate_cmd; serve_cmd; stats_cmd; vase_cmd;
          ]))
